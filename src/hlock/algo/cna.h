// CNA (Compact NUMA-Aware) lock, written once over the memory backend.
//
// CNA is an MCS queue lock whose releaser prefers a same-cluster successor:
// on release it scans the main queue for the first waiter on its own cluster,
// detaches the remote waiters it skipped into a *secondary* queue, and hands
// the lock over locally.  The secondary queue is spliced back (ahead of or
// into the main queue) when no local waiter exists or when a starvation
// bound -- kMaxStreak consecutive local handoffs -- is reached, so remote
// waiters are delayed but never starved (Dice & Kogan, EuroSys '19).
//
// The structure deliberately mirrors McsCore: one queue node per caller,
// links as caller id + 1 (0 = nil), waiters spinning on their own node's
// locked flag.  The CNA-specific state (sec_head_/sec_tail_/streak_) is
// touched only by the current lock holder, so those words need no atomicity
// beyond the grant chain: the release store that passes the lock publishes
// them to the next holder.
//
// Invariants:
//   - sec_tail's next link is always nil: a detached prefix's last node has
//     its stale next cleared *at detach time*, before the prefix becomes
//     reachable as secondary state.  This is what makes the main-queue splice
//     (CAS tail_ me -> sec_tail) safe against concurrent enqueuers: a new
//     waiter that swaps itself behind sec_tail writes a link nobody
//     overwrites afterwards.
//   - the lock is never freed (tail_ -> nil) while the secondary queue is
//     nonempty; a drained main queue with secondary waiters promotes the
//     secondary queue to main instead.
//   - the scan only dereferences next links that were observed non-nil, and
//     stops at the first nil link: nodes moved to the secondary queue are
//     therefore never the main-queue tail.
//
// Memory orders: tail swap acq_rel; predecessor link store release; grant
// store release; spin load acquire; scan-next loads acquire; holder-only
// secondary/streak state relaxed (published by the grant).

#ifndef HLOCK_ALGO_CNA_H_
#define HLOCK_ALGO_CNA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/hlock/algo/backend.h"
#include "src/hlock/padded.h"
#include "src/hprof/lock_site.h"

namespace hlock::algo {

template <class B>
class CnaCore {
 public:
  using Ctx = typename B::Ctx;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  static constexpr std::uint64_t kNil = 0;
  // Local handoffs in a row before the secondary queue is force-flushed.
  static constexpr std::uint64_t kDefaultMaxStreak = 64;

  // `home` is the module holding the lock words; queue nodes live on their
  // caller's module.  `broken_splice` is a deliberate bug switch for the
  // model-checking tests: a drained main queue *frees* the lock word and only
  // then grants the secondary head, so a fresh enqueuer can swap itself onto
  // the nil tail and hold the lock concurrently (hcheck catches the mutual
  // exclusion violation).
  CnaCore(B* b, std::uint32_t home, std::uint64_t max_streak = kDefaultMaxStreak,
          bool broken_splice = false)
      : b_(b), max_streak_(max_streak), broken_splice_(broken_splice), name_("cna") {
    const std::uint32_t n = b_->NumCtxs();
    nodes_ = std::make_unique<Node[]>(n);
    b_->InitWord(tail_, home, kNil);
    b_->InitWord(sec_head_, home, kNil);
    b_->InitWord(sec_tail_, home, kNil);
    b_->InitWord(streak_, home, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      b_->InitWord(nodes_[i].next, b_->HomeOf(i), kNil);
      b_->InitWord(nodes_[i].locked, b_->HomeOf(i), 1);
    }
  }
  CnaCore(const CnaCore&) = delete;
  CnaCore& operator=(const CnaCore&) = delete;

  // The acquire is plain MCS (the NUMA awareness is all in the release):
  // nodes keep the H1 rest state (next == nil, locked == 1), re-established
  // by whoever disturbs it.
  TaskT<void> Acquire(Ctx& ctx) {
    const std::uint64_t me = b_->CtxId(ctx) + 1;
    Node& node = nodes_[me - 1];
    typename B::Span span = b_->AcquireSpan(ctx, name_);
    const std::uint64_t wait_start = site_ != nullptr ? b_->Now(ctx) : 0;

    const std::uint64_t pred =
        co_await b_->FetchStore(ctx, tail_, me, std::memory_order_acq_rel);
    co_await b_->Exec(ctx, 1, 2);
    if (pred == kNil) {
      if (site_ != nullptr) {
        RecordGrant(ctx, wait_start, /*contended=*/false);
      }
      b_->EndSpan(ctx, span);
      co_return;
    }

    if (site_ != nullptr) {
      site_->EnterQueue(b_->ClusterOfCtx(me - 1));
    }
    co_await b_->Store(ctx, nodes_[pred - 1].next, me, std::memory_order_release);
    typename B::SpinWait sw = b_->MakeSpinWait();
    while (true) {
      const std::uint64_t locked =
          co_await b_->Load(ctx, node.locked, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      if (locked == 0) {
        break;
      }
      co_await b_->SpinPause(ctx, sw);
    }
    // Rest-state re-init, absorbed by the write buffer (nobody reads our
    // locked flag until our next contended acquire).
    b_->PostStore(ctx, node.locked, 1);
    if (site_ != nullptr) {
      site_->LeaveQueue();
      RecordGrant(ctx, wait_start, /*contended=*/true);
    }
    b_->EndSpan(ctx, span);
  }

  TaskT<void> Release(Ctx& ctx) {
    const std::uint64_t me = b_->CtxId(ctx) + 1;
    Node& node = nodes_[me - 1];
    if (site_ != nullptr) {
      site_->RecordRelease(b_->Now(ctx) - hold_start_);
    }
    b_->ReleaseInstant(ctx, name_);

    std::uint64_t succ = co_await b_->Load(ctx, node.next, std::memory_order_acquire);
    co_await b_->Exec(ctx, 0, 1);
    // Holder-only state: relaxed, published to the next holder by the grant.
    const std::uint64_t sec_head =
        co_await b_->Load(ctx, sec_head_, std::memory_order_relaxed);
    co_await b_->Exec(ctx, 0, 1);

    if (succ == kNil) {
      if (sec_head == kNil) {
        // Nobody anywhere: free the lock if we are still the tail.
        const bool freed = co_await b_->CompareSwap(ctx, tail_, me, kNil,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire);
        co_await b_->Exec(ctx, 0, 1);
        if (freed) {
          co_return;  // node.next is already nil: rest state holds
        }
      } else if (broken_splice_) {
        // BUG (deliberate, for hcheck): free the lock word, then grant the
        // secondary head.  In the window between the two, a fresh enqueuer
        // swaps itself onto the nil tail and believes it holds the lock --
        // two holders at once.
        const bool freed = co_await b_->CompareSwap(ctx, tail_, me, kNil,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire);
        co_await b_->Exec(ctx, 0, 1);
        if (freed) {
          co_await ClearSecondary(ctx, /*streak=*/0);
          co_await Grant(ctx, sec_head);
          co_return;
        }
      } else {
        // Main queue drained but remote waiters are parked: promote the
        // secondary queue to main.  sec_tail's next link is nil (invariant),
        // so a concurrent enqueuer behind it links cleanly.
        const std::uint64_t sec_tail =
            co_await b_->Load(ctx, sec_tail_, std::memory_order_relaxed);
        const bool spliced = co_await b_->CompareSwap(ctx, tail_, me, sec_tail,
                                                      std::memory_order_acq_rel,
                                                      std::memory_order_acquire);
        co_await b_->Exec(ctx, 0, 1);
        if (spliced) {
          co_await ClearSecondary(ctx, /*streak=*/0);
          co_await Grant(ctx, sec_head);
          co_return;
        }
      }
      // The tail CAS failed: someone is enqueueing behind us; wait for the
      // link to appear.
      typename B::SpinWait sw = b_->MakeSpinWait();
      while (succ == kNil) {
        succ = co_await b_->Load(ctx, node.next, std::memory_order_acquire);
        co_await b_->Exec(ctx, 0, 1);
        if (succ == kNil) {
          co_await b_->SpinPause(ctx, sw);
        }
      }
    }

    b_->PostStore(ctx, node.next, kNil);  // rest-state re-init (buffered)

    const std::uint64_t streak =
        co_await b_->Load(ctx, streak_, std::memory_order_relaxed);
    co_await b_->Exec(ctx, 1, 1);
    if (sec_head != kNil && streak + 1 >= max_streak_) {
      // Starvation bound hit: the parked remote waiters run first.  Append
      // the main queue after the secondary one and grant its head.
      const std::uint64_t sec_tail =
          co_await b_->Load(ctx, sec_tail_, std::memory_order_relaxed);
      co_await b_->Store(ctx, nodes_[sec_tail - 1].next, succ, std::memory_order_release);
      co_await ClearSecondary(ctx, /*streak=*/0);
      co_await Grant(ctx, sec_head);
      co_return;
    }

    // Scan the main queue for the first same-cluster waiter.  Only links
    // observed non-nil are crossed, so the scan never passes the tail.
    const std::uint32_t my_cluster = b_->ClusterOfCtx(me - 1);
    std::uint64_t cur = succ;
    std::uint64_t prev = kNil;
    bool found_local = b_->ClusterOfCtx(cur - 1) == my_cluster;
    co_await b_->Exec(ctx, 1, 1);
    while (!found_local) {
      const std::uint64_t nxt =
          co_await b_->Load(ctx, nodes_[cur - 1].next, std::memory_order_acquire);
      co_await b_->Exec(ctx, 1, 2);
      if (nxt == kNil) {
        break;  // cur may be the tail; it cannot be detached
      }
      prev = cur;
      cur = nxt;
      found_local = b_->ClusterOfCtx(cur - 1) == my_cluster;
    }

    if (found_local) {
      if (cur != succ) {
        // Detach the skipped remote prefix [succ..prev] into the secondary
        // queue.  Clearing prev's stale next *now* -- before the prefix is
        // published as secondary state -- upholds the sec_tail invariant.
        co_await b_->Store(ctx, nodes_[prev - 1].next, kNil, std::memory_order_relaxed);
        co_await AppendSecondary(ctx, sec_head, succ, prev);
      }
      co_await b_->Store(ctx, streak_, streak + 1, std::memory_order_relaxed);
      co_await Grant(ctx, cur);
      co_return;
    }

    // No local waiter in the stable part of the queue: hand over remotely.
    // Run the (older) parked remote waiters first when there are any.
    if (sec_head != kNil) {
      const std::uint64_t sec_tail =
          co_await b_->Load(ctx, sec_tail_, std::memory_order_relaxed);
      co_await b_->Store(ctx, nodes_[sec_tail - 1].next, succ, std::memory_order_release);
      co_await ClearSecondary(ctx, /*streak=*/0);
      co_await Grant(ctx, sec_head);
      co_return;
    }
    co_await b_->Store(ctx, streak_, 0, std::memory_order_relaxed);
    co_await Grant(ctx, succ);
  }

  TaskT<bool> TryAcquire(Ctx& ctx) {
    const std::uint64_t me = b_->CtxId(ctx) + 1;
    // The lock is never free with parked secondary waiters, so grabbing a nil
    // tail cannot overtake them.
    const bool taken = co_await b_->CompareSwap(ctx, tail_, kNil, me,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire);
    if (taken && site_ != nullptr) {
      RecordGrant(ctx, b_->Now(ctx), /*contended=*/false);
    }
    co_return taken;
  }

  std::uint64_t max_streak() const { return max_streak_; }
  const std::string& name() const { return name_; }

  // Test-only relaxed peeks at the queue words, for constructing targeted
  // model-checking schedules (the hcheck tests gate on queue shape before
  // releasing the race under test).  Never used by the algorithm itself.
  TaskT<std::uint64_t> DebugLoadTail(Ctx& ctx) {
    co_return co_await b_->Load(ctx, tail_, std::memory_order_relaxed);
  }
  TaskT<std::uint64_t> DebugLoadNext(Ctx& ctx, std::uint32_t id) {
    co_return co_await b_->Load(ctx, nodes_[id].next, std::memory_order_relaxed);
  }

  // Attaches a profiling site (null detaches); recording is host-side only,
  // so a profiled run is operation-identical to an unprofiled one.
  void set_site(hprof::LockSiteStats* site) { site_ = site; }
  hprof::LockSiteStats* site() const { return site_; }

 private:
  struct alignas(kCacheLineSize) Node {
    typename B::Word next;    // successor's caller id + 1, or 0 (nil)
    typename B::Word locked;  // 1 while the owner must wait
  };

  TaskT<void> Grant(Ctx& ctx, std::uint64_t who) {
    co_await b_->Store(ctx, nodes_[who - 1].locked, 0, std::memory_order_release);
    co_await b_->Exec(ctx, 1, 1);
  }

  TaskT<void> ClearSecondary(Ctx& ctx, std::uint64_t streak) {
    co_await b_->Store(ctx, sec_head_, kNil, std::memory_order_relaxed);
    co_await b_->Store(ctx, sec_tail_, kNil, std::memory_order_relaxed);
    co_await b_->Store(ctx, streak_, streak, std::memory_order_relaxed);
  }

  // Appends the detached chain [first..last] to the secondary queue.  last's
  // next link is already nil (cleared at detach).
  TaskT<void> AppendSecondary(Ctx& ctx, std::uint64_t sec_head, std::uint64_t first,
                              std::uint64_t last) {
    if (sec_head == kNil) {
      co_await b_->Store(ctx, sec_head_, first, std::memory_order_relaxed);
    } else {
      const std::uint64_t sec_tail =
          co_await b_->Load(ctx, sec_tail_, std::memory_order_relaxed);
      co_await b_->Store(ctx, nodes_[sec_tail - 1].next, first, std::memory_order_relaxed);
    }
    co_await b_->Store(ctx, sec_tail_, last, std::memory_order_relaxed);
    co_await b_->Exec(ctx, 1, 1);
  }

  void RecordGrant(Ctx& ctx, std::uint64_t wait_start, bool contended) {
    const std::uint64_t now = b_->Now(ctx);
    const std::uint32_t id = b_->CtxId(ctx);
    site_->RecordAcquire(id, now - wait_start, contended, b_->ClusterOfCtx(id));
    hold_start_ = now;
  }

  B* b_;
  std::uint64_t max_streak_;
  bool broken_splice_;
  std::string name_;
  typename B::Word tail_;      // caller id + 1 of the main-queue tail, or 0
  typename B::Word sec_head_;  // holder-only: parked remote chain head, or 0
  typename B::Word sec_tail_;  // holder-only: parked remote chain tail, or 0
  typename B::Word streak_;    // holder-only: consecutive local handoffs
  std::unique_ptr<Node[]> nodes_;
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_CNA_H_
