// Reserve "bits": the fine-grained half of the hybrid locking strategy,
// written once over the memory backend.
//
// A reserve word is set under the protection of a coarse-grained lock using
// ordinary loads and stores (no atomic operations), may be held for a long
// time, and is cleared by its holder with a plain store.  Waiters release the
// coarse lock and spin on the reserve word with exponential backoff, then
// re-acquire the coarse lock and retry (Figure 1b).
//
// Depending on the data it protects a reserve word acts as an exclusive lock
// or as a reader-writer lock (Section 2.3): value 0 means free, kExclusive
// means exclusively reserved, any other value is a reader count.  All state
// transitions except the exclusive holder's clear happen under the coarse
// lock, so plain read-modify-write sequences are safe.
//
// The operations are stateless over a caller-owned word: the simulator runs
// them on SimWords embedded in kernel descriptors, the native HybridTable on
// reserve words embedded in its type-stable entries.  Memory orders carry the
// native publication contract: seeing 0 with an acquire load takes over the
// entry, so the previous holder's writes (published by the release store in
// ClearExclusive) must be visible.

#ifndef HLOCK_ALGO_RESERVE_H_
#define HLOCK_ALGO_RESERVE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>

#include "src/hlock/algo/backend.h"

namespace hlock::algo {

template <class B>
struct ReserveCore {
  using Ctx = typename B::Ctx;
  using Word = typename B::Word;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  static constexpr std::uint64_t kFree = 0;
  static constexpr std::uint64_t kExclusive = std::numeric_limits<std::uint64_t>::max();
  static constexpr std::uint64_t kBaseBackoff = 8;

  // --- operations that require the protecting coarse lock to be held ---

  // Attempts to reserve exclusively.  Returns false if already reserved
  // (exclusively or by readers).
  static TaskT<bool> TrySetExclusive(B& b, Ctx& ctx, Word& word) {
    const std::uint64_t state = co_await b.Load(ctx, word, std::memory_order_acquire);
    co_await b.Exec(ctx, 0, 1);
    if (state != kFree) {
      co_return false;
    }
    co_await b.Store(ctx, word, kExclusive, std::memory_order_relaxed);
    co_return true;
  }

  // Attempts to add a reader.  Returns false if exclusively reserved.
  static TaskT<bool> TryAddReader(B& b, Ctx& ctx, Word& word) {
    const std::uint64_t state = co_await b.Load(ctx, word, std::memory_order_acquire);
    co_await b.Exec(ctx, 1, 1);
    if (state == kExclusive) {
      co_return false;
    }
    // The reader count must never reach kExclusive: that increment would make
    // a fully-read-shared entry indistinguishable from an exclusive
    // reservation.  Unreachable in practice (2^64 - 2 concurrent readers),
    // but cheap, and it keeps the encoding honest under hcheck.
    B::Check(state + 1 != kExclusive, "reserve reader count saturated into kExclusive");
    co_await b.Store(ctx, word, state + 1, std::memory_order_relaxed);
    co_return true;
  }

  // Drops a reader (also requires the coarse lock: reader counts are shared
  // state with no atomic update primitive).
  static TaskT<void> RemoveReader(B& b, Ctx& ctx, Word& word) {
    const std::uint64_t state = co_await b.Load(ctx, word, std::memory_order_relaxed);
    co_await b.Exec(ctx, 1, 0);
    // A decrement from 0 would wrap to kExclusive -- a phantom exclusive
    // reservation nobody can ever release.
    B::Check(state != kFree && state != kExclusive, "reserve reader release without a reader hold");
    co_await b.Store(ctx, word, state - 1, std::memory_order_relaxed);
  }

  // Reads the current state (for handlers that must fail rather than spin).
  static TaskT<std::uint64_t> Read(B& b, Ctx& ctx, Word& word) {
    co_return co_await b.Load(ctx, word, std::memory_order_acquire);
  }

  // --- atomic (coarse-lock-free) transition family ---
  //
  // Once *any* reserve transition happens outside the coarse lock -- the
  // hybrid table's distributed-RW read path lets readers enter and leave
  // without it -- every transition on that word must be a real
  // read-modify-write: a plain load+store TrySetExclusive racing a CAS
  // increment would silently erase the reader.  The plain-store family above
  // stays exactly as the paper wrote it (HECTOR has no CAS; the simulated
  // kernel keeps Figure 4's instruction counts), and callers pick one family
  // per word, never mix.

  static TaskT<bool> TrySetExclusiveAtomic(B& b, Ctx& ctx, Word& word) {
    const bool won = co_await b.CompareSwap(ctx, word, kFree, kExclusive,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed);
    co_await b.Exec(ctx, 0, 1);
    co_return won;
  }

  static TaskT<bool> TryAddReaderAtomic(B& b, Ctx& ctx, Word& word) {
    while (true) {
      const std::uint64_t state = co_await b.Load(ctx, word, std::memory_order_relaxed);
      co_await b.Exec(ctx, 1, 1);
      if (state == kExclusive) {
        co_return false;
      }
      B::Check(state + 1 != kExclusive, "reserve reader count saturated into kExclusive");
      if (co_await b.CompareSwap(ctx, word, state, state + 1,
                                 std::memory_order_acquire,
                                 std::memory_order_relaxed)) {
        co_return true;
      }
      // Lost the race to another reader or a writer: re-read and retry
      // (bounded in practice by the reader population).
    }
  }

  static TaskT<void> RemoveReaderAtomic(B& b, Ctx& ctx, Word& word) {
    while (true) {
      const std::uint64_t state = co_await b.Load(ctx, word, std::memory_order_relaxed);
      co_await b.Exec(ctx, 1, 1);
      B::Check(state != kFree && state != kExclusive,
               "reserve reader release without a reader hold");
      if (co_await b.CompareSwap(ctx, word, state, state - 1,
                                 std::memory_order_release,
                                 std::memory_order_relaxed)) {
        co_return;
      }
    }
  }

  // --- operations performed without the coarse lock ---

  // The exclusive holder clears its reservation with a plain (release) store.
  static TaskT<void> ClearExclusive(B& b, Ctx& ctx, Word& word) {
    co_await b.Store(ctx, word, kFree, std::memory_order_release);
  }

  // Backoff state for the spin protocols.  One *logical* acquire attempt may
  // call SpinUntilFree several times -- the hybrid table re-takes the coarse
  // lock, loses the race, and spins again -- and the doubling delay must
  // survive those round trips: re-arming it at kBaseBackoff on every retry
  // (the pre-unification behaviour of the simulated kernel's hand-rolled
  // loop, and of any caller that loops around the one-shot helpers) turns
  // the cap into dead code and hammers a contended word at base delay
  // forever.  Arm one Backoff per logical acquire and pass it through every
  // retry; it only resets when the caller's acquire completes.
  struct Backoff {
    std::uint64_t delay = kBaseBackoff;
  };

  // Spins (with jittered exponential backoff capped at `max_backoff`) until
  // the word is observed free.  The caller then re-acquires the coarse lock
  // and re-checks; this helper alone guarantees nothing.  `bo` persists the
  // doubling delay across retries of the same logical acquire.
  static TaskT<void> SpinUntilFree(B& b, Ctx& ctx, Word& word, std::uint64_t max_backoff,
                                   Backoff& bo) {
    co_await SpinUntil(b, ctx, word, max_backoff, bo, /*until_free=*/true);
  }

  // Spins until the word is observed *not exclusively* reserved (reader
  // admission); same caveats as SpinUntilFree.
  static TaskT<void> SpinWhileExclusive(B& b, Ctx& ctx, Word& word, std::uint64_t max_backoff,
                                        Backoff& bo) {
    co_await SpinUntil(b, ctx, word, max_backoff, bo, /*until_free=*/false);
  }

  // One-shot conveniences for callers whose retry loop is the spin itself
  // (no coarse-lock round trip, so nothing outlives the call).
  static TaskT<void> SpinUntilFree(B& b, Ctx& ctx, Word& word, std::uint64_t max_backoff) {
    Backoff bo;
    co_await SpinUntil(b, ctx, word, max_backoff, bo, /*until_free=*/true);
  }
  static TaskT<void> SpinWhileExclusive(B& b, Ctx& ctx, Word& word, std::uint64_t max_backoff) {
    Backoff bo;
    co_await SpinUntil(b, ctx, word, max_backoff, bo, /*until_free=*/false);
  }

 private:
  static TaskT<void> SpinUntil(B& b, Ctx& ctx, Word& word, std::uint64_t max_backoff,
                               Backoff& bo, bool until_free) {
    while (true) {
      const std::uint64_t state = co_await b.Load(ctx, word, std::memory_order_acquire);
      co_await b.Exec(ctx, 0, 1);
      if (until_free ? state == kFree : state != kExclusive) {
        co_return;
      }
      // Jitter desynchronizes waiters that were released in a convoy; the
      // doubling cap bounds the worst-case reaction time to a free word.
      // The cap clamps the delay itself (not just the growth): a caller may
      // pass a non-power-of-two cap, which the doubling would otherwise
      // overshoot on its last step.
      const std::uint64_t delay = std::min(bo.delay, max_backoff);
      const std::uint64_t jittered = delay / 2 + b.RandomBelow(ctx, delay / 2 + 1);
      co_await b.BackoffUnits(ctx, jittered, /*at_cap=*/delay >= max_backoff);
      bo.delay = std::min(delay * 2, max_backoff);
    }
  }
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_RESERVE_H_
