// Test-and-set spin lock with exponential backoff (Figure 3c), written once
// over the memory backend.
//
// acquire:  while test_and_set(L) == locked: delay; delay *= 2 (capped)
// release:  swap(L, 0)
//
// HECTOR's only atomic primitive is swap, so both the test-and-set and the
// release are atomic swaps (two memory accesses each at the lock's home
// module).  Uncontended instruction cost matches Figure 4's "Spin" row:
// 2 atomic, 0 memory, 1 register, 3 branch instructions per lock/unlock pair.
//
// Under contention every retry crosses the interconnect, which is precisely
// the source of the second-order effects the Distributed Locks avoid.  The
// backoff cap is the tuning knob the paper evaluates at 35 us and 2 ms: a
// small cap keeps uncontended latency low but floods the interconnect under
// load; a large cap is gentle on the memory system but invites starvation.

#ifndef HLOCK_ALGO_SPIN_H_
#define HLOCK_ALGO_SPIN_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/hlock/algo/backend.h"
#include "src/hprof/lock_site.h"

namespace hlock::algo {

template <class B>
class SpinCore {
 public:
  using Ctx = typename B::Ctx;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  static constexpr std::uint64_t kUnlocked = 0;
  static constexpr std::uint64_t kLocked = 1;
  static constexpr std::uint64_t kDefaultBaseBackoff = 4;  // a handful of instructions

  SpinCore(B* b, std::uint32_t home, std::uint64_t max_backoff,
           std::uint64_t base_backoff = kDefaultBaseBackoff, std::string name = "spin")
      : b_(b), max_backoff_(max_backoff), base_backoff_(base_backoff), name_(std::move(name)) {
    b_->InitWord(word_, home, kUnlocked);
  }
  SpinCore(const SpinCore&) = delete;
  SpinCore& operator=(const SpinCore&) = delete;

  TaskT<void> Acquire(Ctx& ctx) {
    typename B::Span span = b_->AcquireSpan(ctx, name_);
    const std::uint64_t wait_start = site_ != nullptr ? b_->Now(ctx) : 0;
    bool queued = false;
    // First attempt: test_and_set; then the uncontended exit charges the
    // delay-register init, the test branch and the return (Figure 4: Spin
    // row, acquire half).
    std::uint64_t old = co_await b_->FetchStore(ctx, word_, kLocked, std::memory_order_acquire);
    co_await b_->Exec(ctx, 1, 2);
    std::uint64_t delay = base_backoff_;
    if (site_ != nullptr && old == kLocked) {
      site_->EnterQueue(b_->ClusterOfCtx(b_->CtxId(ctx)));
      queued = true;
    }
    while (old == kLocked) {
      // Back off without generating memory traffic, then retry the swap.  As
      // in Figure 3c the delay doubles deterministically from a small base:
      // fresh contenders retry rapidly, which is precisely what floods the
      // lock's memory module and station bus under bursty demand.
      retries_.fetch_add(1, std::memory_order_relaxed);
      co_await b_->BackoffUnits(ctx, delay, /*at_cap=*/delay >= max_backoff_);
      delay = std::min(delay * 2, max_backoff_);
      old = co_await b_->FetchStore(ctx, word_, kLocked, std::memory_order_acquire);
      co_await b_->Exec(ctx, 1, 1);
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (site_ != nullptr) {
      if (queued) {
        site_->LeaveQueue();
      }
      const std::uint64_t now = b_->Now(ctx);
      const std::uint32_t id = b_->CtxId(ctx);
      site_->RecordAcquire(id, now - wait_start, queued, b_->ClusterOfCtx(id));
      hold_start_ = now;
    }
    b_->EndSpan(ctx, span);
  }

  TaskT<void> Release(Ctx& ctx) {
    if (site_ != nullptr) {
      site_->RecordRelease(b_->Now(ctx) - hold_start_);
    }
    // HECTOR has no plain way to order an uncached store after the critical
    // section's accesses, so the release is also a swap (counted atomic).
    co_await b_->FetchStore(ctx, word_, kUnlocked, std::memory_order_release);
    co_await b_->Exec(ctx, 0, 1);
    b_->ReleaseInstant(ctx, name_);
  }

  TaskT<bool> TryAcquire(Ctx& ctx) {
    const std::uint64_t old =
        co_await b_->FetchStore(ctx, word_, kLocked, std::memory_order_acquire);
    co_await b_->Exec(ctx, 1, 1);
    const bool taken = old == kUnlocked;
    if (taken) {
      acquisitions_.fetch_add(1, std::memory_order_relaxed);
      if (site_ != nullptr) {
        const std::uint64_t now = b_->Now(ctx);
        const std::uint32_t id = b_->CtxId(ctx);
        site_->RecordAcquire(id, 0, /*contended=*/false, b_->ClusterOfCtx(id));
        hold_start_ = now;
      }
    }
    co_return taken;
  }

  std::uint64_t max_backoff() const { return max_backoff_; }
  const std::string& name() const { return name_; }

  // Contention statistics.
  std::uint64_t acquisitions() const { return acquisitions_.load(std::memory_order_relaxed); }
  std::uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }

  void set_site(hprof::LockSiteStats* site) { site_ = site; }
  hprof::LockSiteStats* site() const { return site_; }

 private:
  B* b_;
  typename B::Word word_;
  std::uint64_t max_backoff_;
  std::uint64_t base_backoff_;
  std::string name_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> retries_{0};
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_SPIN_H_
