// The memory-backend concept: one lock algorithm, three memories.
//
// Every lock algorithm in src/hlock/algo/ is written exactly once, as a
// coroutine over an abstract *memory backend* B.  A backend supplies the
// pieces that the native Platform policy (src/hlock/platform.h) and the
// HECTOR simulator's Processor API (src/hsim/machine.h) both provide, just
// with different spellings and costs:
//
//   typename B::Ctx       per-caller execution context (a thread id slot
//                         natively, a simulated Processor in hsim)
//   typename B::Word      one backend-owned 64-bit location.  Words are
//                         default-constructible and placed with
//                         b.InitWord(word, home_module, init) -- placement is
//                         what gives a word a NUMA home in the simulator and
//                         is a no-op natively.
//   typename B::SpinWait  per-acquisition local-spin pacing state (a
//                         Platform::Backoff natively, nothing in hsim where
//                         the pause is a fixed costed delay)
//   typename B::Deadline  an acquire budget: an absolute simulated-time
//                         deadline in hsim, a decrementing iteration budget
//                         natively (deterministic under hcheck -- wall-clock
//                         deadlines would break schedule replay)
//   template <class T> using TaskT
//                         the coroutine task type the algorithm bodies
//                         return: hsim::Task<T> (lazy, costed co_awaits) in
//                         the simulator, SyncTask<T> (below; every await is
//                         immediately ready) natively and under hcheck
//
// Operations (all carry std::memory_order parameters; the native backend
// honours them, the simulator -- a sequentially consistent machine with an
// explicit write buffer -- ignores them):
//
//   TaskT<u64>  Load(ctx, word, mo)
//   TaskT<void> Store(ctx, word, v, mo)
//   void        PostStore(ctx, word, v)       write-buffered store: the
//               simulator posts it (non-blocking, local module only), the
//               native backend issues a relaxed store
//   TaskT<u64>  FetchStore(ctx, word, v, mo)  atomic swap -- HECTOR's only RMW
//   TaskT<bool> CompareSwap(ctx, word, expected, desired, ok_mo, fail_mo)
//               CAS; not available on real HECTOR hardware, costed like one
//               atomic in the simulator (comparison-point rationale in
//               machine.h).  The beyond-the-paper locks (CNA, HMCS-T,
//               Fissile) assume CAS hardware.
//   TaskT<void> Exec(ctx, registers, branches)
//               charge register/branch instructions (simulator only; free
//               natively) -- this is what makes fig4 instruction counts
//               reproduce through the shared layer
//   TaskT<void> SpinPause(ctx, spin_wait)     one pacing step of a local spin
//               loop (fixed 16-tick delay in hsim; Platform::Backoff::Pause,
//               i.e. exactly one hcheck schedule point, natively)
//   TaskT<void> BackoffUnits(ctx, units)      an *explicit* backoff delay in
//               backend time units, used only by algorithms whose backoff is
//               part of the algorithm itself (Figure 3c's doubling delay)
//
// Topology and identity (host-side, free):
//
//   u32  CtxId(ctx)            dense caller id, < NumCtxs()
//   u32  NumCtxs()             queue-node array sizing
//   u32  ClusterOfCtx(id)      cluster (HECTOR station) of a caller
//   u32  NumClusters()
//   u32  HomeOf(id)            memory module local to a caller (for InitWord)
//   u64  Now(ctx)              ticks (simulated time / host ns); free
//   u64  RandomBelow(ctx, n)   jitter source (deterministic midpoint natively)
//   Deadline MakeDeadline(ctx, budget), bool Expired(ctx, deadline)
//   void Check(cond, msg)      algorithm invariant check (FailCheck under
//                              hcheck, abort in the simulator)
//   WithPool(f)                runs f under the backend's node-pool guard
//   AcquireSpan/EndSpan/ReleaseInstant   lock trace hooks (simulator only)
//
// Not everything moved onto the layer.  TAS/TTAS/Ticket (spin_locks.h) stay
// hand-written: TtasSpinLock is the Platform::PoolLock -- the bootstrap lock
// *beneath* this layer -- and cannot be expressed through it without a cycle.
// BasicMcsLock keeps its own body (caller-owned nodes + CAS release: the
// modern-hardware comparison lock, a deliberately different algorithm).
// McsTryV1 and SpinThenBlockLock stay Platform-templated: their semantics
// (interrupt re-entry, OS blocking) have no simulator mapping, and they
// already run under two of the three memories.  Everything the simulator
// duplicates -- MCS/H1/H2, backoff spin, reserve bits -- plus the new NUMA
// family lives here.

#ifndef HLOCK_ALGO_BACKEND_H_
#define HLOCK_ALGO_BACKEND_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

namespace hlock::algo {

// Acquire budget (MakeDeadline) that never expires.  Checking an infinite
// deadline costs nothing in any backend, so a timed acquire with this budget
// is operation-for-operation identical to the untimed algorithm.
inline constexpr std::uint64_t kInfiniteBudget = ~std::uint64_t{0};

// An already-available value, awaitable without suspending.  The native
// backend returns these from every operation, so an algorithm coroutine runs
// to completion synchronously inside the initial call.
template <typename T>
struct Ready {
  T value;
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  T await_resume() noexcept { return std::move(value); }
};

template <>
struct Ready<void> {
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

// Eagerly-run coroutine task: initial_suspend = never, so the body executes
// synchronously (all its awaitables are Ready or other SyncTasks); by the
// time the caller holds the SyncTask the result -- or a captured exception --
// is already there.  Exceptions are rethrown from Get()/await_resume():
// hcheck unwinds checked code with its AbortExecution exception, which must
// pass through nested lock coroutines intact.
template <typename T>
class SyncTask {
 public:
  struct promise_type {
    T value{};
    std::exception_ptr error;

    SyncTask get_return_object() {
      return SyncTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  explicit SyncTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  SyncTask(SyncTask&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  SyncTask(const SyncTask&) = delete;
  SyncTask& operator=(const SyncTask&) = delete;
  ~SyncTask() {
    if (h_) {
      h_.destroy();
    }
  }

  T Get() {
    if (h_.promise().error) {
      std::rethrow_exception(h_.promise().error);
    }
    return std::move(h_.promise().value);
  }

  // Awaitable, so cores can co_await sub-cores (HMCS-T awaiting its
  // per-level TimeoutMcsCore) regardless of backend.
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  T await_resume() { return Get(); }

 private:
  std::coroutine_handle<promise_type> h_;
};

template <>
class SyncTask<void> {
 public:
  struct promise_type {
    std::exception_ptr error;

    SyncTask get_return_object() {
      return SyncTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  explicit SyncTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  SyncTask(SyncTask&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  SyncTask(const SyncTask&) = delete;
  SyncTask& operator=(const SyncTask&) = delete;
  ~SyncTask() {
    if (h_) {
      h_.destroy();
    }
  }

  void Get() {
    if (h_.promise().error) {
      std::rethrow_exception(h_.promise().error);
    }
  }

  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() { Get(); }

 private:
  std::coroutine_handle<promise_type> h_;
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_BACKEND_H_
