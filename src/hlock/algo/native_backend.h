// Native memory backend: the algorithm layer on a Platform policy.
//
// One template covers two of the three memories (see backend.h): bound to
// hlock::StdPlatform it runs on raw std::atomic for production and benches;
// bound to hcheck::Platform the same instantiation runs on the model
// checker's vector-clock memory, where every operation is a schedule point.
// Simulated-machine concerns (instruction costing, word homes, trace spans)
// degrade to no-ops; memory orders are honoured exactly as written by the
// algorithm cores.
//
// Determinism note: under hcheck an execution must replay bit-for-bit from
// its decision sequence, so nothing here may consult wall clocks or entropy
// on the operation path.  Deadlines are iteration budgets and RandomBelow is
// a fixed midpoint (backoff jitter is a simulator-fidelity feature, not a
// correctness one).

#ifndef HLOCK_ALGO_NATIVE_BACKEND_H_
#define HLOCK_ALGO_NATIVE_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/hlock/algo/backend.h"
#include "src/hprof/lock_site.h"

namespace hlock::algo {

template <class Platform>
class NativeBackend {
 public:
  // True when the Platform is the model checker's (hcheck::Platform sets
  // kModelChecked); backoff collapses to single yields there.
  static constexpr bool kModelChecked = requires { Platform::kModelChecked; };
  // `procs_per_cluster` maps dense thread ids onto clusters for the
  // NUMA-aware algorithms (CNA's secondary queue, HMCS-T's local level) and
  // for hprof handoff attribution.  Native thread placement is whatever the
  // OS did, so this is a modelling knob, not a hardware fact; 1 makes every
  // thread its own cluster (the conservative default matching hprof).
  explicit NativeBackend(std::uint32_t procs_per_cluster = 1)
      : procs_per_cluster_(procs_per_cluster == 0 ? 1 : procs_per_cluster) {}

  struct Ctx {
    std::uint32_t id;
  };

  // A backend-owned 64-bit location.  Default-constructed to 0; InitWord
  // re-places it (placement is meaningless natively, so this is just an
  // initializing store).  Not movable once observed -- cores keep words in
  // fixed arrays, never containers that relocate.
  struct Word {
    typename Platform::template Atomic<std::uint64_t> v{0};
  };

  template <typename T>
  using TaskT = SyncTask<T>;

  struct SpinWait {
    typename Platform::Backoff backoff;
  };

  struct Deadline {
    std::uint64_t remaining = 0;
    bool infinite = true;
  };

  // --- word lifecycle -------------------------------------------------------
  void InitWord(Word& w, std::uint32_t /*home_module*/, std::uint64_t init) {
    w.v.store(init, std::memory_order_relaxed);
  }

  // --- memory operations ----------------------------------------------------
  Ready<std::uint64_t> Load(Ctx&, Word& w, std::memory_order mo) {
    return {w.v.load(mo)};
  }
  Ready<void> Store(Ctx&, Word& w, std::uint64_t v, std::memory_order mo) {
    w.v.store(v, mo);
    return {};
  }
  // Write-buffered store in the simulator; a relaxed store here.  Used by the
  // cores only for rest-state re-initialization of locations nobody reads
  // until the writer's own next acquire.
  void PostStore(Ctx&, Word& w, std::uint64_t v) {
    w.v.store(v, std::memory_order_relaxed);
  }
  Ready<std::uint64_t> FetchStore(Ctx&, Word& w, std::uint64_t v, std::memory_order mo) {
    return {w.v.exchange(v, mo)};
  }
  Ready<bool> CompareSwap(Ctx&, Word& w, std::uint64_t expected, std::uint64_t desired,
                          std::memory_order ok_mo, std::memory_order fail_mo) {
    return {w.v.compare_exchange_strong(expected, desired, ok_mo, fail_mo)};
  }

  // --- costing / pacing -----------------------------------------------------
  Ready<void> Exec(Ctx&, std::uint32_t /*registers*/, std::uint32_t /*branches*/) {
    return {};  // instruction costing is a simulator concern
  }
  SpinWait MakeSpinWait() { return SpinWait{}; }
  // One local-spin pacing step: exactly one Platform::Backoff round, which
  // under hcheck is exactly one Yield -- the same schedule-point shape the
  // hand-written locks had, so existing model-checking results carry over.
  Ready<void> SpinPause(Ctx&, SpinWait& sw) {
    sw.backoff.Pause();
    return {};
  }
  // Explicit algorithmic backoff (Figure 3c's doubling delay), in backend
  // time units.  Natively a unit is one pause instruction; `at_cap` is the
  // few-core-host valve hlock::Backoff has at its cap -- once the delay stops
  // growing, let the holder have the core.
  Ready<void> BackoffUnits(Ctx&, std::uint64_t units, bool at_cap) {
    if constexpr (kModelChecked) {
      // Delay magnitude is meaningless to the model checker, and every Pause
      // is a schedule point: one Yield is a complete backoff (the same shape
      // the hand-written spin loops had, one yield per retry).
      Platform::Pause();
      return {};
    }
    constexpr std::uint64_t kMaxSpins = 4096;
    const std::uint64_t spins = units < kMaxSpins ? units : kMaxSpins;
    for (std::uint64_t i = 0; i < spins; ++i) {
      Platform::Pause();
    }
    if (at_cap) {
      std::this_thread::yield();
    }
    return {};
  }

  // --- identity / topology (host-side, free) --------------------------------
  std::uint32_t CtxId(Ctx& ctx) const { return ctx.id; }
  std::uint32_t NumCtxs() const { return Platform::kMaxThreads; }
  std::uint32_t ClusterOfCtx(std::uint32_t id) const { return id / procs_per_cluster_; }
  std::uint32_t NumClusters() const {
    return (NumCtxs() + procs_per_cluster_ - 1) / procs_per_cluster_;
  }
  std::uint32_t procs_per_cluster() const { return procs_per_cluster_; }
  std::uint32_t HomeOf(std::uint32_t /*ctx_id*/) const { return 0; }

  // Ticks for hprof wait/hold intervals: host nanoseconds.  Cores only call
  // this when a site is attached, preserving the zero-cost-when-detached
  // contract of the hand-written locks.
  std::uint64_t Now(Ctx&) const { return hprof::LockSiteStats::NowTicks(); }

  std::uint64_t RandomBelow(Ctx&, std::uint64_t bound) const {
    return bound == 0 ? 0 : bound / 2;  // deterministic midpoint (see header)
  }

  Deadline MakeDeadline(Ctx&, std::uint64_t budget) const {
    return budget == kInfiniteBudget ? Deadline{0, true} : Deadline{budget, false};
  }
  // Free when infinite, so a timed acquire with an infinite budget is
  // operation-for-operation identical to the untimed algorithm.
  bool Expired(Ctx&, Deadline& d) const {
    if (d.infinite) {
      return false;
    }
    if (d.remaining == 0) {
      return true;
    }
    --d.remaining;
    return false;
  }

  static void Check(bool cond, const char* msg) { Platform::Check(cond, msg); }

  // Node-pool guard for the timeout cores' alloc/free (Platform::PoolLock:
  // the bootstrap TTAS lock natively, the model mutex under hcheck).
  template <class F>
  void WithPool(F&& f) {
    std::lock_guard<typename Platform::PoolLock> guard(pool_lock_);
    f();
  }

  // --- trace hooks (simulator only) -----------------------------------------
  struct Span {};
  Span AcquireSpan(Ctx&, const std::string&) { return Span{}; }
  void EndSpan(Ctx&, Span&) {}
  void ReleaseInstant(Ctx&, const std::string&) {}

 private:
  std::uint32_t procs_per_cluster_;
  typename Platform::PoolLock pool_lock_;
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_NATIVE_BACKEND_H_
