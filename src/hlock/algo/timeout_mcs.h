// MCS queue lock with timeout (abandonable nodes), written once over the
// memory backend.  This is the building block of the hierarchical HMCS-T
// lock (algo/hmcs.h) and follows the pooled-node machinery of
// BasicMcsTryV2Lock (src/hlock/mcs_try_lock.h): a waiter that gives up
// cannot unlink itself from the middle of an MCS queue, so it marks its node
// abandoned and leaves; releasers garbage-collect abandoned nodes while
// handing the lock over (cf. Craig's timeout queue locks).
//
// Grant tokens: a releaser hands over one of two values -- kGranted ("you
// hold this lock; acquire the next level yourself") or kGrantedInherit ("you
// hold this lock AND inherit the enclosing level's ownership").  The token is
// what makes the hierarchical composition work: an intra-cluster handoff
// passes the global lock along without touching it.
//
// Nodes are pool-allocated because a thread can time out and re-acquire
// while its abandoned node still sits in the queue; nodes are freed by
// *other* threads (the releaser reclaims abandoned nodes), so the pool is
// guarded by the backend's WithPool lock, off the algorithm's fast path.
// Handles are opaque u64 node identities.
//
// Memory orders: tail swap acq_rel; predecessor link store release; state
// spin load acquire; state grant/abandon CAS acq_rel/acquire (the only
// arbiter between a timing-out waiter and its granter); tail-release CAS
// acq_rel/acquire; node re-initialization relaxed.

#ifndef HLOCK_ALGO_TIMEOUT_MCS_H_
#define HLOCK_ALGO_TIMEOUT_MCS_H_

#include <atomic>
#include <cstdint>

#include "src/hlock/algo/backend.h"

namespace hlock::algo {

template <class B>
class TimeoutMcsCore {
 public:
  using Ctx = typename B::Ctx;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;

  // Node states / grant tokens.
  static constexpr std::uint64_t kWaiting = 0;
  static constexpr std::uint64_t kGranted = 1;
  static constexpr std::uint64_t kAbandoned = 2;
  static constexpr std::uint64_t kGrantedInherit = 3;

  static constexpr std::uint64_t kNil = 0;

  // Acquire outcome: node == 0 means the deadline expired; otherwise `node`
  // is the handle to pass to Release*/TryPassLocal and `token` is the grant
  // token received (kGranted, or kGrantedInherit from an in-cluster pass).
  struct Grant {
    std::uint64_t node = 0;
    std::uint64_t token = 0;
    bool contended = false;  // true when the acquire had to queue behind someone
  };

  // `home` is the module holding the tail word; queue nodes are homed on the
  // module of the caller that first allocates them.  `broken_abandon` is a
  // deliberate bug switch for the model-checking tests: a timed-out waiter
  // walks away WITHOUT marking its node abandoned, orphaning it in the queue
  // (hcheck catches the resulting lost wakeup and pool leak).
  TimeoutMcsCore(B* b, std::uint32_t home, bool broken_abandon = false)
      : b_(b), broken_abandon_(broken_abandon) {
    b_->InitWord(tail_, home, kNil);
  }
  ~TimeoutMcsCore() {
    Node* node = all_nodes_;
    while (node != nullptr) {
      Node* next = node->all_next;
      delete node;
      node = next;
    }
  }
  TimeoutMcsCore(const TimeoutMcsCore&) = delete;
  TimeoutMcsCore& operator=(const TimeoutMcsCore&) = delete;

  // Acquires or times out against `deadline`.  An infinite deadline makes
  // this the plain (untimed) acquire.
  TaskT<Grant> Acquire(Ctx& ctx, typename B::Deadline& deadline) {
    Node* node = co_await AllocNode(ctx);
    const std::uint64_t pred_bits =
        co_await b_->FetchStore(ctx, tail_, Bits(node), std::memory_order_acq_rel);
    co_await b_->Exec(ctx, 1, 2);
    if (pred_bits == kNil) {
      co_return Grant{Bits(node), kGranted, /*contended=*/false};
    }
    co_await b_->Store(ctx, FromBits(pred_bits)->next, Bits(node), std::memory_order_release);
    typename B::SpinWait sw = b_->MakeSpinWait();
    while (true) {
      const std::uint64_t state =
          co_await b_->Load(ctx, node->state, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      if (state != kWaiting) {
        co_return Grant{Bits(node), state, /*contended=*/true};
      }
      if (b_->Expired(ctx, deadline)) {
        if (broken_abandon_) {
          // BUG (deliberate, for hcheck): leave without abandoning.  The node
          // stays kWaiting forever; a releaser will "grant" a departed
          // thread and the lock is lost.
          co_return Grant{};
        }
        // Abandon.  If the predecessor granted us the lock in the window, the
        // CAS fails and we own the lock after all.
        const bool abandoned =
            co_await b_->CompareSwap(ctx, node->state, kWaiting, kAbandoned,
                                     std::memory_order_acq_rel, std::memory_order_acquire);
        co_await b_->Exec(ctx, 0, 1);
        if (abandoned) {
          // The node stays in the queue; a release will reclaim it.
          co_return Grant{};
        }
        const std::uint64_t granted =
            co_await b_->Load(ctx, node->state, std::memory_order_acquire);
        co_return Grant{Bits(node), granted, /*contended=*/true};
      }
      co_await b_->SpinPause(ctx, sw);
    }
  }

  // Hands the lock to the next *waiting* node with `token`, reclaiming any
  // abandoned nodes on the way.  Returns 0 when the lock was passed (the
  // caller's node is freed); otherwise no successor is visible, the caller
  // STILL HOLDS the lock, and the returned handle replaces its node (it may
  // differ from the input when abandoned nodes were adopted).  Never releases
  // the lock -- the fallback for "nobody to pass to" is the caller's choice.
  TaskT<std::uint64_t> TryPassLocal(Ctx& ctx, std::uint64_t node_bits, std::uint64_t token) {
    Node* node = FromBits(node_bits);
    while (true) {
      const std::uint64_t succ_bits =
          co_await b_->Load(ctx, node->next, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      if (succ_bits == kNil) {
        co_return Bits(node);
      }
      Node* succ = FromBits(succ_bits);
      const bool granted =
          co_await b_->CompareSwap(ctx, succ->state, kWaiting, token,
                                   std::memory_order_acq_rel, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      if (granted) {
        FreeNode(node);
        co_return kNil;
      }
      // Abandoned: reclaim it, adopt its queue position, keep walking.
      FreeNode(node);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
      node = succ;
    }
  }

  // Releases: grants the next waiting node `token`, or frees the lock if the
  // queue drains (abandoned nodes are reclaimed on the way).
  TaskT<void> ReleaseWithToken(Ctx& ctx, std::uint64_t node_bits, std::uint64_t token) {
    Node* node = FromBits(node_bits);
    typename B::SpinWait sw = b_->MakeSpinWait();
    while (true) {
      std::uint64_t succ_bits = co_await b_->Load(ctx, node->next, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      if (succ_bits == kNil) {
        const bool freed = co_await b_->CompareSwap(ctx, tail_, Bits(node), kNil,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire);
        co_await b_->Exec(ctx, 0, 1);
        if (freed) {
          FreeNode(node);
          co_return;
        }
        while (succ_bits == kNil) {
          succ_bits = co_await b_->Load(ctx, node->next, std::memory_order_acquire);
          co_await b_->Exec(ctx, 0, 1);
          if (succ_bits == kNil) {
            co_await b_->SpinPause(ctx, sw);
          }
        }
      }
      Node* succ = FromBits(succ_bits);
      const bool granted =
          co_await b_->CompareSwap(ctx, succ->state, kWaiting, token,
                                   std::memory_order_acq_rel, std::memory_order_acquire);
      co_await b_->Exec(ctx, 0, 1);
      FreeNode(node);
      if (granted) {
        co_return;
      }
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
      node = succ;  // abandoned: we own it now; continue with its successor
    }
  }

  TaskT<void> Release(Ctx& ctx, std::uint64_t node_bits) {
    return ReleaseWithToken(ctx, node_bits, kGranted);
  }

  std::uint64_t abandoned_nodes_reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  // --- pool conservation (quiescent observers, for tests) --------------------
  // With the lock free and no thread inside lock code, every node ever
  // allocated must sit in the free list exactly once: total_nodes() ==
  // pooled_nodes().  A leak (abandoned node never reclaimed) or a double free
  // (caught eagerly by FreeNode) breaks the equality.
  std::uint64_t total_nodes() {
    std::uint64_t n = 0;
    b_->WithPool([&] { n = total_nodes_; });
    return n;
  }
  std::uint64_t pooled_nodes() {
    std::uint64_t n = 0;
    b_->WithPool([&] {
      for (Node* node = free_list_; node != nullptr; node = node->pool_next) {
        ++n;
      }
    });
    return n;
  }

 private:
  struct Node {
    typename B::Word next;   // successor handle, or 0
    typename B::Word state;  // kWaiting / kGranted / kGrantedInherit / kAbandoned
    Node* pool_next = nullptr;  // free-list link; guarded by WithPool
    Node* all_next = nullptr;   // allocation chain, for the destructor
    bool in_pool = false;       // guarded by WithPool; catches double frees
  };

  static std::uint64_t Bits(Node* node) {
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(node));
  }
  static Node* FromBits(std::uint64_t bits) {
    return reinterpret_cast<Node*>(static_cast<std::uintptr_t>(bits));
  }

  TaskT<Node*> AllocNode(Ctx& ctx) {
    Node* node = nullptr;
    b_->WithPool([&] {
      if (free_list_ != nullptr) {
        node = free_list_;
        free_list_ = node->pool_next;
        node->pool_next = nullptr;
        node->in_pool = false;
      }
    });
    if (node != nullptr) {
      // Re-initialization is part of the acquire path (costed).
      co_await b_->Store(ctx, node->next, kNil, std::memory_order_relaxed);
      co_await b_->Store(ctx, node->state, kWaiting, std::memory_order_relaxed);
      co_return node;
    }
    node = new Node;
    // Nodes are homed on the allocating caller's module; they migrate between
    // threads through the pool, so this is a first-touch heuristic.
    const std::uint32_t home = b_->HomeOf(b_->CtxId(ctx));
    b_->InitWord(node->next, home, kNil);
    b_->InitWord(node->state, home, kWaiting);
    b_->WithPool([&] {
      node->all_next = all_nodes_;
      all_nodes_ = node;
      ++total_nodes_;
    });
    co_return node;
  }

  void FreeNode(Node* node) {
    // Nodes are type-stable: only ever reused as queue nodes of this lock.
    b_->WithPool([&] {
      B::Check(!node->in_pool, "TimeoutMcsCore: queue node freed twice");
      node->in_pool = true;
      node->pool_next = free_list_;
      free_list_ = node;
    });
  }

  B* b_;
  bool broken_abandon_;
  typename B::Word tail_;
  std::atomic<std::uint64_t> reclaimed_{0};
  // Node pool; all three guarded by the backend's WithPool lock.
  Node* free_list_ = nullptr;
  Node* all_nodes_ = nullptr;
  std::uint64_t total_nodes_ = 0;
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_TIMEOUT_MCS_H_
