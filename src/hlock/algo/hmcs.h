// HMCS-T: hierarchical MCS lock (one level per cluster, one global level)
// with timeout, written once over the memory backend.
//
// A caller first acquires its cluster's local MCS lock, then the global one;
// holding both means holding the lock (Chabbi, Fagan & Mellor-Crummey, PPoPP
// '15).  The NUMA win is in the release: up to `threshold` times in a row the
// holder passes BOTH locks to the next waiter on its own cluster in one
// intra-cluster handoff (`kGrantedInherit`), never touching the remote global
// lock word.  When the local queue drains -- or the streak hits the
// starvation bound -- the global lock is released and the next cluster runs.
//
// The timeout composes through both levels on one deadline (the -T part,
// after HMCS-T): a waiter that gives up at either level abandons its queue
// node for releasers to reclaim (see algo/timeout_mcs.h for the abandonment
// protocol).  A waiter that times out at the global level must first
// reacquire nothing -- it already holds its local lock -- but must hand that
// local lock on before failing, so a timed-out acquire never strands its
// cluster.
//
// Per-cluster streak words are holder-only state (like CNA's secondary
// queue), published to the next holder by the grant itself.  The
// global-level node handle is host state indexed by cluster: it is written
// by whichever caller acquired the global lock for the cluster and read by
// whichever same-cluster caller eventually releases it; the grant chain's
// release/acquire ordering carries it across the handoff.

#ifndef HLOCK_ALGO_HMCS_H_
#define HLOCK_ALGO_HMCS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hlock/algo/backend.h"
#include "src/hlock/algo/timeout_mcs.h"
#include "src/hlock/padded.h"
#include "src/hprof/lock_site.h"

namespace hlock::algo {

template <class B>
class HmcsTCore {
 public:
  using Ctx = typename B::Ctx;
  template <typename T>
  using TaskT = typename B::template TaskT<T>;
  using Level = TimeoutMcsCore<B>;

  // Intra-cluster handoffs in a row before the global lock is cycled.
  static constexpr std::uint64_t kDefaultThreshold = 64;

  // `home` is the module holding the global lock word; each cluster's local
  // lock word is homed on the first processor of that cluster.
  // `broken_abandon` forwards the deliberate timeout bug to both levels (a
  // timed-out waiter orphans its node; hcheck catches the lost wakeup).
  HmcsTCore(B* b, std::uint32_t home, std::uint64_t threshold = kDefaultThreshold,
            bool broken_abandon = false)
      : b_(b), threshold_(threshold), name_("hmcs-t") {
    const std::uint32_t nclusters = b_->NumClusters();
    const std::uint32_t nctxs = b_->NumCtxs();
    global_ = std::make_unique<Level>(b, home, broken_abandon);
    locals_.reserve(nclusters);
    streak_ = std::make_unique<typename B::Word[]>(nclusters);
    global_node_ = std::make_unique<Padded<std::uint64_t>[]>(nclusters);
    for (std::uint32_t c = 0; c < nclusters; ++c) {
      // Home each cluster's lock word (and streak) on its first processor.
      std::uint32_t cluster_home = home;
      for (std::uint32_t id = 0; id < nctxs; ++id) {
        if (b_->ClusterOfCtx(id) == c) {
          cluster_home = b_->HomeOf(id);
          break;
        }
      }
      locals_.push_back(std::make_unique<Level>(b, cluster_home, broken_abandon));
      b_->InitWord(streak_[c], cluster_home, 0);
      global_node_[c].value = 0;
    }
    local_node_ = std::make_unique<Padded<std::uint64_t>[]>(nctxs);
  }
  HmcsTCore(const HmcsTCore&) = delete;
  HmcsTCore& operator=(const HmcsTCore&) = delete;

  // Acquires within `deadline`; returns false on timeout (no lock held, no
  // queue node left behind -- abandoned nodes are reclaimed by releasers).
  TaskT<bool> Acquire(Ctx& ctx, typename B::Deadline& deadline) {
    const std::uint32_t id = b_->CtxId(ctx);
    const std::uint32_t cluster = b_->ClusterOfCtx(id);
    typename B::Span span = b_->AcquireSpan(ctx, name_);
    const std::uint64_t wait_start = site_ != nullptr ? b_->Now(ctx) : 0;

    typename Level::Grant local = co_await locals_[cluster]->Acquire(ctx, deadline);
    if (local.node == 0) {
      b_->EndSpan(ctx, span);
      co_return false;  // timed out in the local queue
    }
    local_node_[id].value = local.node;
    if (local.token == Level::kGrantedInherit) {
      // The previous same-cluster holder passed the global lock along with
      // the local one: the whole acquire was one intra-cluster handoff.
      Finish(ctx, wait_start, /*contended=*/true, cluster);
      b_->EndSpan(ctx, span);
      co_return true;
    }

    typename Level::Grant global = co_await global_->Acquire(ctx, deadline);
    if (global.node == 0) {
      // Timed out at the global level while holding the local lock: hand the
      // local lock on (plain grant -- the successor must fight for the
      // global lock itself) so the cluster is not stranded.
      co_await locals_[cluster]->ReleaseWithToken(ctx, local.node, Level::kGranted);
      b_->EndSpan(ctx, span);
      co_return false;
    }
    global_node_[cluster].value = global.node;
    co_await b_->Store(ctx, streak_[cluster], 0, std::memory_order_relaxed);
    Finish(ctx, wait_start, local.contended || global.contended, cluster);
    b_->EndSpan(ctx, span);
    co_return true;
  }

  // Untimed acquire: an infinite deadline never expires, so this is the
  // plain blocking HMCS algorithm.
  TaskT<bool> AcquireBlocking(Ctx& ctx) {
    typename B::Deadline deadline = b_->MakeDeadline(ctx, kInfiniteBudget);
    co_return co_await Acquire(ctx, deadline);
  }

  TaskT<void> Release(Ctx& ctx) {
    const std::uint32_t id = b_->CtxId(ctx);
    const std::uint32_t cluster = b_->ClusterOfCtx(id);
    std::uint64_t node = local_node_[id].value;
    if (site_ != nullptr) {
      site_->RecordRelease(b_->Now(ctx) - hold_start_);
    }
    b_->ReleaseInstant(ctx, name_);

    const std::uint64_t streak =
        co_await b_->Load(ctx, streak_[cluster], std::memory_order_relaxed);
    co_await b_->Exec(ctx, 1, 1);
    if (streak + 1 < threshold_) {
      // Try the one-handoff fast path: pass local AND global to the next
      // same-cluster waiter.  The streak is bumped *before* the pass -- after
      // it the successor owns the lock (and the streak word) and a late
      // write would race with its release.
      co_await b_->Store(ctx, streak_[cluster], streak + 1, std::memory_order_relaxed);
      const std::uint64_t rest =
          co_await locals_[cluster]->TryPassLocal(ctx, node, Level::kGrantedInherit);
      if (rest == 0) {
        co_return;  // passed; the successor inherited the global lock
      }
      // Nobody (live) behind us in the local queue; we still hold both
      // locks.  The handle may have changed if abandoned nodes were adopted.
      node = rest;
    }
    // Cycle the global lock: the next cluster (or a late local waiter, via
    // the normal two-level acquire) runs.
    co_await b_->Store(ctx, streak_[cluster], 0, std::memory_order_relaxed);
    co_await global_->Release(ctx, global_node_[cluster].value);
    co_await locals_[cluster]->ReleaseWithToken(ctx, node, Level::kGranted);
  }

  std::uint64_t threshold() const { return threshold_; }
  const std::string& name() const { return name_; }
  Level& global_level() { return *global_; }
  Level& local_level(std::uint32_t cluster) { return *locals_[cluster]; }
  std::uint32_t num_levels() const { return static_cast<std::uint32_t>(locals_.size()) + 1; }

  // Attaches a profiling site (null detaches); recording is host-side only.
  // The wait/contention sample covers the whole two-level acquire; queue
  // residency is recorded as an instantaneous enqueue+leave at grant time
  // (per-level residency belongs to the level locks, not to this composite).
  void set_site(hprof::LockSiteStats* site) { site_ = site; }
  hprof::LockSiteStats* site() const { return site_; }

 private:
  void Finish(Ctx& ctx, std::uint64_t wait_start, bool contended, std::uint32_t cluster) {
    if (site_ == nullptr) {
      return;
    }
    const std::uint64_t now = b_->Now(ctx);
    if (contended) {
      site_->EnterQueue(cluster);
      site_->LeaveQueue();
    }
    site_->RecordAcquire(b_->CtxId(ctx), now - wait_start, contended, cluster);
    hold_start_ = now;
  }

  B* b_;
  std::uint64_t threshold_;
  std::string name_;
  std::unique_ptr<Level> global_;
  std::vector<std::unique_ptr<Level>> locals_;  // one per cluster
  std::unique_ptr<typename B::Word[]> streak_;  // holder-only, one per cluster
  // Host-side handles, carried across handoffs by the grant chain's ordering.
  std::unique_ptr<Padded<std::uint64_t>[]> global_node_;  // per cluster
  std::unique_ptr<Padded<std::uint64_t>[]> local_node_;   // per caller
  hprof::LockSiteStats* site_ = nullptr;
  std::uint64_t hold_start_ = 0;  // owner-written only (protected by the lock)
};

}  // namespace hlock::algo

#endif  // HLOCK_ALGO_HMCS_H_
