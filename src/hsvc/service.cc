#include "src/hsvc/service.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace hsvc {
namespace {

// Fibonacci hashing spreads adjacent keys across a shard's pumps; the raw key
// already picked the cluster via std::hash (identity for integers), so the
// within-shard pick must not reuse the same low bits.
inline std::uint32_t MixKey(std::uint64_t key) {
  return static_cast<std::uint32_t>((key * 0x9E3779B97F4A7C15ull) >> 40);
}

}  // namespace

std::uint64_t Service::NowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

Service::Service(const ServiceConfig& config) : config_(config) {
  // The completion path hands finished requests back through a
  // LockFreeFreeList; if this build's 16-byte atomic head degraded to the
  // hidden libatomic mutex, say so loudly once (and export it as the
  // svc.freelist_lock_free gauge below).
  hlock::LockFreeFreeList::WarnIfNotLockFree("hsvc completion path");
  runtime_ = std::make_unique<hcluster::ClusterRuntime>(config_.topology);
  table_ = std::make_unique<hcluster::ClusteredTable<std::uint64_t, std::uint64_t>>(
      runtime_.get(), config_.buckets_per_cluster, config_.read_path);
  pumps_.reserve(config_.topology.workers);
  for (std::uint32_t w = 0; w < config_.topology.workers; ++w) {
    pumps_.push_back(std::make_unique<Pump>(config_.queue_bound));
  }
  // One pump process per worker.  They run until ~Service; the runtime's
  // drain-on-destroy would otherwise wait on them forever, so the destructor
  // stops them before the runtime goes down.
  for (std::uint32_t w = 0; w < config_.topology.workers; ++w) {
    pumps_live_.fetch_add(1, std::memory_order_relaxed);
    runtime_->Post(w, [this, w] { PumpLoop(w); });
  }
}

Service::~Service() {
  stop_.store(true, std::memory_order_release);
  for (std::uint32_t w = 0; w < config_.topology.workers; ++w) {
    runtime_->Kick(w);
  }
  while (pumps_live_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  // Members destruct in reverse order: pumps, then the table, then the
  // runtime (whose destructor drains any still-running handler work).
}

AdmitResult Service::Submit(Request* req, hcluster::ClusterId origin) {
  // Writes execute where the key lives (home shard: the broadcast fans out
  // from there); reads execute where the client lives (local replica).
  const hcluster::ClusterId shard =
      req->kind == OpKind::kPut ? home_cluster(req->key)
                                : static_cast<hcluster::ClusterId>(origin % num_shards());
  const std::uint32_t within = MixKey(req->key) % config_.topology.cluster_size;
  const hcluster::WorkerId w = shard * config_.topology.cluster_size + within;
  Pump& pump = *pumps_[w];

  const std::uint64_t now = NowNs();
  if (req->deadline_ns == 0 && config_.default_deadline_ns != 0) {
    req->deadline_ns = now + config_.default_deadline_ns;
  }
  req->status = Status::kPending;
  req->enqueue_ns = now;
  if (req->flight != nullptr) {
    // Admission boundary: admit phase = begin..here.  Stamped before the
    // push -- the queue's release/acquire edge transfers record ownership to
    // the pump -- and rolled back below if admission fails (the node never
    // left the caller, so rejected requests stay entirely in admit + reply).
    req->flight->enqueue = now;
  }

  if (!pump.queue.TryPush(req)) {
    if (req->flight != nullptr) {
      req->flight->enqueue = hflight::FlightRecord::kUnset;
    }
    pump.rejected.fetch_add(1, std::memory_order_relaxed);
    // Retry-after ~= time for the pump to work off its current backlog.
    const std::uint64_t backlog = pump.queue.depth();
    const std::uint64_t ema = pump.ema_service_ns.load(std::memory_order_relaxed);
    const std::uint64_t us = backlog * ema / 1000;
    return AdmitResult{false,
                       static_cast<std::uint32_t>(std::clamp<std::uint64_t>(us, 50, 100000))};
  }
  pump.admitted.fetch_add(1, std::memory_order_relaxed);
  // seq_cst pairs with the pump's idle protocol (see Pump::idle): either we
  // see idle and kick, or the pump's post-idle re-poll sees our push.
  if (pump.idle.load(std::memory_order_seq_cst)) {
    runtime_->Kick(w);
  }
  return AdmitResult{true, 0};
}

void Service::PumpLoop(std::uint32_t worker) {
  Pump& pump = *pumps_[worker];
  std::vector<Request*> batch;
  batch.reserve(config_.batch_max);

  const auto fill_batch = [&] {
    batch.clear();
    while (batch.size() < config_.batch_max) {
      Request* req = pump.queue.Pop();
      if (req == nullptr) {
        break;
      }
      batch.push_back(req);
    }
  };

  while (!stop_.load(std::memory_order_acquire)) {
    // Handlers first: remote fetches and broadcast writes directed at this
    // worker are what *other* pumps are blocked on.
    runtime_->ServiceInbox();
    fill_batch();
    if (!batch.empty()) {
      ProcessBatch(pump, batch);
      continue;
    }
    // Idle.  Epoch before the idle flag: a Kick after this snapshot makes
    // WaitForWork fall through; a push before it is caught by the depth
    // re-check below (the seq_cst store/load pairing with Submit guarantees
    // one of the two).
    const std::uint64_t epoch = runtime_->WakeEpoch();
    pump.idle.store(true, std::memory_order_seq_cst);
    if (pump.queue.depth() == 0 && !stop_.load(std::memory_order_acquire)) {
      runtime_->WaitForWork(epoch, std::chrono::milliseconds(1));
    }
    pump.idle.store(false, std::memory_order_relaxed);
  }

  // Stopped: producers are gone (the destructor's contract), but admitted
  // requests may still be queued.  Complete them -- an admitted request is a
  // promise.  depth() counting fully-linked pushes only, Pop() cannot
  // transiently fail here.
  while (pump.queue.depth() != 0) {
    fill_batch();
    if (!batch.empty()) {
      ProcessBatch(pump, batch);
    }
  }
  pumps_live_.fetch_sub(1, std::memory_order_acq_rel);
}

void Service::ProcessBatch(Pump& pump, std::vector<Request*>& batch) {
  pump.batches.fetch_add(1, std::memory_order_relaxed);
  pump.batch_fill.Record(batch.size());

  // Within-batch read combining (Section 2.4 at the request layer): one
  // table lookup serves every same-key read in the batch.  A write to the
  // key invalidates the cached value.
  bool cache_valid = false;
  bool cache_found = false;
  std::uint64_t cache_key = 0;
  std::uint64_t cache_value = 0;

  for (Request* req : batch) {
    const std::uint64_t start = NowNs();
    req->start_ns = start;
    if (req->flight != nullptr) {
      req->flight->start = start;
    }
    pump.wait_us.Record((start - req->enqueue_ns) / 1000);
    if (req->deadline_ns != 0 && start > req->deadline_ns) {
      Complete(pump, req, Status::kExpired, 0);
      continue;
    }
    if (req->kind == OpKind::kGet && cache_valid && cache_key == req->key) {
      // Combined reads never touch the table, so they are exempt from
      // pacing: batching buys real capacity, exactly the Section 2.4 claim.
      pump.combined.fetch_add(1, std::memory_order_relaxed);
      Complete(pump, req, cache_found ? Status::kOk : Status::kNotFound,
               cache_found ? cache_value : 0);
      continue;
    }
    PaceOne(pump);
    if (req->flight != nullptr) {
      // Execution boundary: pacing dwell stays in the batch phase, table
      // work (and its lock waits, via the ledger below) lands in exec..done.
      req->flight->exec = NowNs();
    }
    hflight::ScopedLedger ledger(config_.flight, req->flight);
    if (req->kind == OpKind::kGet) {
      // Different-key reads cannot combine, but on the distributed read path
      // they no longer serialize either: Get's replica lookup is a
      // cluster-local reader entry on the table's RW chain lock, so every
      // pump's uncombined reads proceed in parallel.
      const std::optional<std::uint64_t> value = table_->Get(req->key);
      cache_valid = true;
      cache_key = req->key;
      cache_found = value.has_value();
      cache_value = value.value_or(0);
      Complete(pump, req, cache_found ? Status::kOk : Status::kNotFound, cache_value);
    } else {
      table_->Put(req->key, req->value_in);
      if (cache_valid && cache_key == req->key) {
        cache_valid = false;
      }
      Complete(pump, req, Status::kOk, req->value_in);
    }
  }
}

void Service::Complete(Pump& pump, Request* req, Status status, std::uint64_t value) {
  req->status = status;
  req->value_out = value;
  req->done_ns = NowNs();
  if (req->flight != nullptr) {
    req->flight->done = req->done_ns;
  }
  if (status == Status::kExpired) {
    pump.expired.fetch_add(1, std::memory_order_relaxed);
  } else {
    const std::uint64_t service_ns = req->done_ns - req->start_ns;
    pump.service_us.Record(service_ns / 1000);
    // EMA with 1/8 gain: smooth enough for a retry-after hint, cheap enough
    // for the per-request path.
    const std::uint64_t ema = pump.ema_service_ns.load(std::memory_order_relaxed);
    pump.ema_service_ns.store(ema - ema / 8 + service_ns / 8, std::memory_order_relaxed);
    pump.served.fetch_add(1, std::memory_order_relaxed);
  }
  hlock::LockFreeFreeList* completion = req->completion;
  // Push is a release: the client's Pop acquires, so every output field
  // written above is visible to the owner when the node comes back.
  completion->Push(&req->free_link);
}

void Service::PaceOne(Pump& pump) {
  if (config_.service_rate_per_worker <= 0) {
    return;
  }
  if (pump.last_refill_ns == 0) {
    pump.last_refill_ns = NowNs();
    pump.tokens = 1;  // first request is free
  }
  while (pump.tokens < 1) {
    const std::uint64_t now = NowNs();
    pump.tokens += static_cast<double>(now - pump.last_refill_ns) * 1e-9 *
                   config_.service_rate_per_worker;
    // Cap at one token: an idle pump does not bank a burst, so the
    // configured rate is a hard ceiling on table operations per second.
    pump.tokens = std::min(pump.tokens, 1.0);
    pump.last_refill_ns = now;
    if (pump.tokens < 1) {
      // Stay reachable while throttled.
      runtime_->ServiceInbox();
      const double need_s = (1 - pump.tokens) / config_.service_rate_per_worker;
      const auto nap = std::chrono::nanoseconds(
          std::min<std::uint64_t>(static_cast<std::uint64_t>(need_s * 1e9), 100000));
      std::this_thread::sleep_for(nap);
    }
  }
  pump.tokens -= 1;
}

void Service::Drain() {
  while (true) {
    const std::uint64_t done = served() + expired();
    const std::uint64_t in = admitted();
    if (done >= in) {
      return;
    }
    std::this_thread::yield();
  }
}

void Service::AttachLockProfiler(hprof::SiteTable* sites) {
  table_->AttachLockProfiler(sites, "svc.table");
}

void Service::ExportMetrics(hmetrics::Registry* out) const {
  const std::uint32_t per_cluster = config_.topology.cluster_size;
  for (hcluster::ClusterId c = 0; c < num_shards(); ++c) {
    const hmetrics::Labels labels{{"shard", std::to_string(c)}};
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t served = 0;
    std::uint64_t batches = 0;
    std::uint64_t combined = 0;
    double depth = 0;
    hmetrics::LatencyHistogram& wait = out->histogram("svc.wait_us", labels);
    hmetrics::LatencyHistogram& service = out->histogram("svc.service_us", labels);
    hmetrics::LatencyHistogram& fill = out->histogram("svc.batch_fill", labels);
    for (std::uint32_t i = 0; i < per_cluster; ++i) {
      const Pump& pump = *pumps_[c * per_cluster + i];
      admitted += pump.admitted.load(std::memory_order_relaxed);
      rejected += pump.rejected.load(std::memory_order_relaxed);
      expired += pump.expired.load(std::memory_order_relaxed);
      served += pump.served.load(std::memory_order_relaxed);
      batches += pump.batches.load(std::memory_order_relaxed);
      combined += pump.combined.load(std::memory_order_relaxed);
      depth += static_cast<double>(pump.queue.depth());
      wait.Merge(pump.wait_us);
      service.Merge(pump.service_us);
      fill.Merge(pump.batch_fill);
    }
    out->counter("svc.admitted", labels).Add(admitted);
    out->counter("svc.rejected", labels).Add(rejected);
    out->counter("svc.expired", labels).Add(expired);
    out->counter("svc.served", labels).Add(served);
    out->counter("svc.batches", labels).Add(batches);
    out->counter("svc.combined_gets", labels).Add(combined);
    out->gauge("svc.queue_depth", labels).Set(depth);
  }
  // 1 when the completion free list's 16-byte head is genuinely lock-free on
  // this target/build, 0 when libatomic backs it with a hidden mutex (see
  // lock_free.h).  Not per-shard: the property is a property of the build.
  out->gauge("svc.freelist_lock_free", {})
      .Set(hlock::LockFreeFreeList::kHeadIsAlwaysLockFree ? 1 : 0);
}

}  // namespace hsvc
