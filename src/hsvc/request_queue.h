// Bounded intrusive MPSC queue -- the request inbox of one shard pump.
//
// The algorithm is the same Vyukov intrusive MPSC list the SoftIrqGate uses
// (producers exchange the head, the single consumer chases next pointers
// through a stub node), plus an admission counter that makes it *bounded*:
// TryPush reserves a slot with a fetch_add and backs out when the bound is
// exceeded, so under overload producers learn "full" in two uncontended
// atomic ops instead of growing an unbounded backlog -- admission control
// rejects at the door, which is what keeps service latency bounded when
// offered load exceeds capacity (the queueing-collapse alternative is the
// whole reason hsvc exists).
//
// Nodes are caller-owned (type-stable request pools, the footnote-2
// discipline): the queue never allocates or frees.  T must expose a
// `std::atomic<T*> mpsc_next` member and be default-constructible (one
// private T serves as the stub; it is never handed out).
//
// Producer-side state (head_, depth_) lives on its own cache lines via
// hlock::Padded so a busy submit path does not ping-pong the consumer's
// tail cursor.

#ifndef HSVC_REQUEST_QUEUE_H_
#define HSVC_REQUEST_QUEUE_H_

#include <atomic>
#include <cstddef>

#include "src/hlock/padded.h"

namespace hsvc {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t bound) : bound_(bound) {
    head_->store(&stub_, std::memory_order_relaxed);
    tail_ = &stub_;
  }
  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  // Any-thread.  Returns false (and leaves `item` untouched beyond its
  // mpsc_next) when the queue already holds `bound` items.
  bool TryPush(T* item) {
    const std::size_t depth = depth_->fetch_add(1, std::memory_order_acq_rel) + 1;
    if (depth > bound_) {
      depth_->fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    item->mpsc_next.store(nullptr, std::memory_order_relaxed);
    T* prev = head_->exchange(item, std::memory_order_acq_rel);
    prev->mpsc_next.store(item, std::memory_order_release);
    return true;
  }

  // Consumer only.  Returns nullptr when empty -- or, rarely, when a producer
  // is mid-push; the item becomes visible at the next call, so pumps treat
  // nullptr as "nothing right now", never as a fence.
  T* Pop() {
    T* tail = tail_;
    T* next = tail->mpsc_next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        return nullptr;
      }
      tail_ = next;
      tail = next;
      next = next->mpsc_next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      return Take(tail, next);
    }
    T* head = head_->load(std::memory_order_acquire);
    if (tail != head) {
      return nullptr;  // producer mid-push; its item will be visible shortly
    }
    // `tail` is the last element: re-insert the stub behind it so the list is
    // never empty, then detach.
    stub_.mpsc_next.store(nullptr, std::memory_order_relaxed);
    T* prev = head_->exchange(&stub_, std::memory_order_acq_rel);
    prev->mpsc_next.store(&stub_, std::memory_order_release);
    next = tail->mpsc_next.load(std::memory_order_acquire);
    if (next != nullptr) {
      return Take(tail, next);
    }
    return nullptr;
  }

  // Occupancy as the admission counter sees it (includes items a producer is
  // still linking in).  Any-thread; advisory.
  std::size_t depth() const { return depth_->load(std::memory_order_relaxed); }
  std::size_t bound() const { return bound_; }

 private:
  T* Take(T* item, T* next) {
    tail_ = next;
    depth_->fetch_sub(1, std::memory_order_relaxed);
    return item;
  }

  const std::size_t bound_;
  hlock::Padded<std::atomic<T*>> head_;           // producers
  hlock::Padded<std::atomic<std::size_t>> depth_{0};  // producers + consumer
  alignas(hlock::kCacheLineSize) T* tail_;        // consumer only
  T stub_;
};

}  // namespace hsvc

#endif  // HSVC_REQUEST_QUEUE_H_
