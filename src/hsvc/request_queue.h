// Bounded intrusive MPSC queue -- the request inbox of one shard pump.
//
// The algorithm is the same Vyukov intrusive MPSC list the SoftIrqGate uses
// (producers exchange the head, the single consumer chases next pointers
// through a stub node), plus an admission counter that makes it *bounded*:
// producers claim a slot with a bounded CAS on the depth counter, so under
// overload they learn "full" in a couple of uncontended atomic ops instead of
// growing an unbounded backlog -- admission control rejects at the door,
// which is what keeps service latency bounded when offered load exceeds
// capacity (the queueing-collapse alternative is the whole reason hsvc
// exists).
//
// Admission contract:
//   - depth() counts admitted-but-not-yet-popped items, including items a
//     producer has claimed a slot for but is still linking in.  The
//     invariant depth() <= bound() holds in EVERY reachable state: a failed
//     TryPush never modifies the counter.
//   - TryPush returns false only when bound() items were genuinely admitted
//     and unpopped at the moment of its (failed) claim.  An earlier version
//     reserved with fetch_add and backed the failure out with fetch_sub;
//     between those two operations depth transiently exceeded the bound, so
//     a concurrent producer racing a concurrent Pop could be rejected while
//     the queue held fewer than bound() items ("phantom full" -- spurious
//     admission-control drops right at the knee of the load curve, exactly
//     where the open-loop benches measure).  The CAS claim closes that
//     window by construction; tests/hcheck/request_queue_hcheck_test.cc
//     model-checks that a quiescent non-full queue never rejects.
//   - The successful claim CAS is acq_rel (it pairs with other claims and
//     with Pop's release decrement); the reload on CAS failure is relaxed --
//     a failed attempt publishes nothing.  Pop's decrement in Take is
//     release, so a producer whose claim reads the decremented count also
//     observes the consumer's detachment of the popped item.
//
// Nodes are caller-owned (type-stable request pools, the footnote-2
// discipline): the queue never allocates or frees.  T must expose a
// `Platform::Atomic<T*> mpsc_next` member and be default-constructible (one
// private T serves as the stub; it is never handed out).  The Platform
// policy (default StdPlatform = std::atomic) exists so the admission
// protocol itself can run under the hcheck model checker.
//
// Producer-side state (head_, depth_) lives on its own cache lines via
// hlock::Padded so a busy submit path does not ping-pong the consumer's
// tail cursor.

#ifndef HSVC_REQUEST_QUEUE_H_
#define HSVC_REQUEST_QUEUE_H_

#include <atomic>
#include <cstddef>

#include "src/hlock/padded.h"
#include "src/hlock/platform.h"

namespace hsvc {

template <typename T, class Platform = hlock::StdPlatform>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t bound) : bound_(bound) {
    head_->store(&stub_, std::memory_order_relaxed);
    tail_ = &stub_;
  }
  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  // Any-thread.  Returns false (and leaves `item` untouched beyond its
  // mpsc_next) when the queue already holds `bound` admitted items.  See the
  // admission contract above: failure never perturbs the counter.
  bool TryPush(T* item) {
    std::size_t depth = depth_->load(std::memory_order_relaxed);
    do {
      if (depth >= bound_) {
        return false;
      }
    } while (!depth_->compare_exchange_weak(depth, depth + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
    item->mpsc_next.store(nullptr, std::memory_order_relaxed);
    T* prev = head_->exchange(item, std::memory_order_acq_rel);
    prev->mpsc_next.store(item, std::memory_order_release);
    return true;
  }

  // Consumer only.  Returns nullptr when empty -- or, rarely, when a producer
  // is mid-push; the item becomes visible at the next call, so pumps treat
  // nullptr as "nothing right now", never as a fence.
  T* Pop() {
    T* tail = tail_;
    T* next = tail->mpsc_next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        return nullptr;
      }
      tail_ = next;
      tail = next;
      next = next->mpsc_next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      return Take(tail, next);
    }
    T* head = head_->load(std::memory_order_acquire);
    if (tail != head) {
      return nullptr;  // producer mid-push; its item will be visible shortly
    }
    // `tail` is the last element: re-insert the stub behind it so the list is
    // never empty, then detach.
    stub_.mpsc_next.store(nullptr, std::memory_order_relaxed);
    T* prev = head_->exchange(&stub_, std::memory_order_acq_rel);
    prev->mpsc_next.store(&stub_, std::memory_order_release);
    next = tail->mpsc_next.load(std::memory_order_acquire);
    if (next != nullptr) {
      return Take(tail, next);
    }
    return nullptr;
  }

  // Occupancy as the admission counter sees it (includes items a producer is
  // still linking in).  Any-thread; advisory, but never exceeds bound().
  std::size_t depth() const { return depth_->load(std::memory_order_relaxed); }
  std::size_t bound() const { return bound_; }

 private:
  T* Take(T* item, T* next) {
    tail_ = next;
    // Release: a producer whose claim CAS reads this decrement also sees the
    // pop it paid for (the claim side is acq_rel).
    depth_->fetch_sub(1, std::memory_order_release);
    return item;
  }

  const std::size_t bound_;
  hlock::Padded<typename Platform::template Atomic<T*>> head_;  // producers
  hlock::Padded<typename Platform::template Atomic<std::size_t>> depth_{
      0};  // producers + consumer
  alignas(hlock::kCacheLineSize) T* tail_;  // consumer only
  T stub_;
};

}  // namespace hsvc

#endif  // HSVC_REQUEST_QUEUE_H_
