// hsvc -- a NUMA-sharded request-serving runtime over the hierarchical
// clustering layer (the paper's kernel, turned outward to face clients).
//
// The hcluster ClusteredTable bounds *lock* contention by clustering; hsvc
// adds the layer modern NUMA-lock evaluations (Dice & Kogan's compact
// NUMA-aware locks; Elphinstone et al.'s microkernel study) measure lock
// designs through: a real request path with queueing, batching, and
// admission behavior.  Each cluster is a shard; each worker of a cluster
// runs a *pump* -- a long-lived process on the ClusterRuntime worker that
// drains a bounded MPSC request queue in batches and executes the operations
// against the clustered table, servicing its RPC inbox throughout (the
// worker stays a schedulable resource, Section 2.3).
//
// The contract with clients mirrors the kernel's optimistic protocol:
//   - Submit is admission-controlled: a full shard queue rejects the request
//     synchronously with a retry-after hint derived from the backlog and the
//     pump's smoothed service time.  Clients back off (jittered, doubling)
//     and retry -- exactly how remote lock requests behave in Section 2.3,
//     so overload degrades into bounded-latency rejection instead of
//     queueing collapse.
//   - Admitted requests carry a deadline; a pump dequeues an expired request
//     and fails it without executing (the work was already wasted once the
//     client gave up -- don't waste the shard's time too).
//   - Reads are routed to the client's own cluster (served from the local
//     replica, replicating on miss); writes are routed to the key's home
//     cluster, where the pump batches arrivals and *combines* reads of the
//     same key within a batch -- the Section 2.4 combining argument lifted
//     to the request layer.
//
// Requests are client-owned, type-stable nodes (footnote-2 discipline): the
// service never allocates per request.  Completion hands the node back by
// pushing it onto the client's lock-free return stack (hlock's Treiber free
// list), so the producer side is allocation- and lock-free end to end.
//
// Observability: per-shard hmetrics (admitted/rejected/expired/served
// counters, queue-depth gauge, wait/service/batch-fill histograms) via
// ExportMetrics, and hprof lock sites on every shard lock (each replica's
// coarse table lock and reserve word) via AttachLockProfiler.

#ifndef HSVC_SERVICE_H_
#define HSVC_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/hcluster/clustered_table.h"
#include "src/hcluster/runtime.h"
#include "src/hcluster/topology.h"
#include "src/hflight/flight.h"
#include "src/hlock/lock_free.h"
#include "src/hmetrics/histogram.h"
#include "src/hmetrics/registry.h"
#include "src/hprof/lock_site.h"
#include "src/hsvc/request_queue.h"

namespace hsvc {

enum class OpKind : std::uint8_t { kGet, kPut };

// Fates of an *admitted* request.  Rejection is synchronous: Submit returns
// it and the node never enters a queue.
enum class Status : std::uint8_t { kPending, kOk, kNotFound, kExpired };

// One request: a client-owned, type-stable node.  The client fills the
// input fields, submits, and must not touch the node again until the service
// hands it back through `completion`; the output fields are valid from then
// on.  Nodes are recycled, never freed, while the service is in use.
struct Request {
  // Return-path linkage: the service pushes the completed node here.  Must
  // be the first member -- completion stacks speak hlock::LockFreeNode and
  // the owner recovers the Request with FromFreeLink.
  hlock::LockFreeNode free_link;
  std::atomic<Request*> mpsc_next{nullptr};  // shard-queue linkage

  // --- inputs (client-written) ---------------------------------------------
  hlock::LockFreeFreeList* completion = nullptr;  // completed nodes land here
  OpKind kind = OpKind::kGet;
  std::uint64_t key = 0;
  std::uint64_t value_in = 0;     // kPut payload
  std::uint64_t scheduled_ns = 0; // client's intended arrival instant
                                  // (coordinated-omission-safe latency base)
  std::uint64_t deadline_ns = 0;  // service clock; 0 = config default / none
  std::uint32_t retries = 0;      // client-side bookkeeping, service-ignored
  // Optional flight record (opened/closed by the client; the service stamps
  // its pipeline boundaries into it and arms the lock-wait ledger around
  // table operations when ServiceConfig::flight is attached).
  hflight::FlightRecord* flight = nullptr;

  // --- outputs (service-written, valid after completion) -------------------
  Status status = Status::kPending;
  std::uint64_t value_out = 0;
  std::uint64_t enqueue_ns = 0;   // stamped by Submit
  std::uint64_t start_ns = 0;     // pump dequeued it
  std::uint64_t done_ns = 0;      // pump finished it

  static Request* FromFreeLink(hlock::LockFreeNode* node) {
    // free_link is the first member of a non-virtual type, so the node's
    // address *is* the request's address.
    return reinterpret_cast<Request*>(node);
  }
};

struct AdmitResult {
  bool admitted = false;
  // Backoff hint when rejected: roughly backlog x smoothed service time.
  // Clients jitter and double it across consecutive rejections.
  std::uint32_t retry_after_us = 0;
};

struct ServiceConfig {
  hcluster::Topology topology{8, 2};
  std::size_t queue_bound = 256;           // per pump (per shard worker)
  std::size_t batch_max = 16;              // requests drained per pump wakeup
  std::size_t buckets_per_cluster = 256;   // clustered-table sizing
  std::uint64_t default_deadline_ns = 0;   // applied when a request has none;
                                           // 0 = no deadline
  // Paced service: each pump serves at most this many requests per second
  // (token bucket).  0 = unpaced (as fast as the table allows).  Benches use
  // pacing to make shard *capacity* a configured quantity, so admission and
  // scaling results are rate-determined instead of host-speed-determined.
  double service_rate_per_worker = 0;
  // How replica readers reach a table chain (see hlock::ReadPath).
  // kDistributed (default) lets pumps on different clusters -- and the
  // *different-key* reads a batch could not combine -- walk the same
  // replica's chains in parallel; kCoarse serializes every read on the
  // replica's coarse lock (kept as the read-heavy bench baseline).
  hlock::ReadPath read_path = hlock::ReadPath::kDistributed;
  // Optional flight recorder: when set, pumps arm a ScopedLedger around
  // table operations so lock waits/holds land in the request's phase ledger
  // (requests without a FlightRecord still serve normally).  Must outlive
  // the service.
  hflight::FlightRecorder* flight = nullptr;
};

class Service {
 public:
  explicit Service(const ServiceConfig& config);
  // Completes every admitted request, stops the pumps, and drains the
  // runtime.  Callers must have stopped submitting.
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Monotonic service clock, nanoseconds.  Shared by clients for scheduled
  // arrivals and deadlines.
  static std::uint64_t NowNs();

  const ServiceConfig& config() const { return config_; }
  std::uint32_t num_shards() const { return config_.topology.num_clusters(); }
  hcluster::ClusterId home_cluster(std::uint64_t key) const {
    return table_->home_cluster(key);
  }

  // Submits `req` on behalf of a client attached to cluster `origin`.  Reads
  // run on the origin shard (local replica); writes run on the key's home
  // shard.  Returns admitted=false with a retry-after hint when the target
  // queue is full; the node is then still owned by the caller.
  AdmitResult Submit(Request* req, hcluster::ClusterId origin);

  // Blocks until every admitted request has completed.  Call from outside
  // the service's threads, after producers have stopped.
  void Drain();

  // Administrative/back-door access to the underlying table (preloads,
  // verification).  Usable concurrently with serving.
  hcluster::ClusteredTable<std::uint64_t, std::uint64_t>& table() { return *table_; }

  // Attaches hprof sites to every shard lock (per-replica coarse lock and
  // reserve word).  Call before traffic; `sites` must outlive the service.
  void AttachLockProfiler(hprof::SiteTable* sites);

  // Writes per-shard series into `out`: counters svc.admitted / svc.rejected
  // / svc.expired / svc.served / svc.batches / svc.combined_gets, gauge
  // svc.queue_depth, histograms svc.wait_us / svc.service_us /
  // svc.batch_fill, each labeled {shard: N}.  Histograms are merged from the
  // shard's pumps; call when traffic is quiescent (counters and the gauge
  // are safe any time).
  void ExportMetrics(hmetrics::Registry* out) const;

  // --- aggregate counters (any time) ---------------------------------------
  std::uint64_t admitted() const { return Sum(&Pump::admitted); }
  std::uint64_t rejected() const { return Sum(&Pump::rejected); }
  std::uint64_t expired() const { return Sum(&Pump::expired); }
  std::uint64_t served() const { return Sum(&Pump::served); }
  std::uint64_t combined_gets() const { return Sum(&Pump::combined); }

 private:
  struct Pump {
    explicit Pump(std::size_t bound) : queue(bound) {}

    BoundedMpscQueue<Request> queue;
    // Submit->pump wake protocol: the pump sets `idle` (seq_cst) and then
    // re-polls the queue before sleeping; Submit pushes and then reads
    // `idle` (seq_cst).  At least one side sees the other, so a request
    // cannot be stranded behind a sleeping pump.
    std::atomic<bool> idle{false};

    // Producer-side counters (any client thread).
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rejected{0};
    // Pump-side counters (single writer, concurrent relaxed readers).
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> combined{0};
    std::atomic<std::uint64_t> ema_service_ns{2000};  // retry-after input

    // Pump-thread-only, exported quiescently.
    hmetrics::LatencyHistogram wait_us;
    hmetrics::LatencyHistogram service_us;
    hmetrics::LatencyHistogram batch_fill;

    // Token-bucket pacing state (pump-thread-only).
    double tokens = 0;
    std::uint64_t last_refill_ns = 0;
  };

  void PumpLoop(std::uint32_t worker);
  void ProcessBatch(Pump& pump, std::vector<Request*>& batch);
  void Complete(Pump& pump, Request* req, Status status, std::uint64_t value);
  void PaceOne(Pump& pump);

  std::uint64_t Sum(std::atomic<std::uint64_t> Pump::* counter) const {
    std::uint64_t total = 0;
    for (const auto& pump : pumps_) {
      total += (pump.get()->*counter).load(std::memory_order_relaxed);
    }
    return total;
  }

  ServiceConfig config_;
  std::unique_ptr<hcluster::ClusterRuntime> runtime_;
  std::unique_ptr<hcluster::ClusteredTable<std::uint64_t, std::uint64_t>> table_;
  std::vector<std::unique_ptr<Pump>> pumps_;  // one per worker
  std::atomic<bool> stop_{false};
  std::atomic<std::uint32_t> pumps_live_{0};
};

}  // namespace hsvc

#endif  // HSVC_SERVICE_H_
