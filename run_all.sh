#!/bin/sh
# Regenerates everything: build, full test suite, every bench, and the merged
# machine-readable results file BENCH_RESULTS.json.
#
# Flags:
#   --full    run benches at paper length (default is --smoke: small iteration
#             counts that exercise every code path in seconds)
#   --tsan    additionally build with -DHSIM_SANITIZE=thread in build-tsan/
#             and run the native lock tests under ThreadSanitizer
#   --hcheck  additionally rerun the hcheck model-checker suite with
#             HCHECK_EXHAUSTIVE=1 (deeper preemption bound, larger schedule
#             budgets — minutes, not seconds).  The bounded hcheck suite
#             always runs as part of ctest above.
#   --faults  additionally run the RPC fault campaign (fig7_fault_tests
#             --faults: drop/dup sweep with exact-once and determinism
#             checks) and merge its sweep into BENCH_RESULTS.json
#   --profile additionally run the Figure 5 profiled contention scenario,
#             write the lockprof export to build/bench/profile/, and render
#             the hprof contention report from it with build/tools/hprof
#   --check-regress  after merging BENCH_RESULTS.json, diff it against the
#             committed BENCH_BASELINE.json with tools/check_regress.py and
#             fail if any baseline series is missing or out of tolerance
set -e
cd "$(dirname "$0")"

SMOKE="--smoke"
TSAN=0
HCHECK=0
FAULTS=0
PROFILE=0
CHECK_REGRESS=0
for arg in "$@"; do
  case "$arg" in
    --full) SMOKE="" ;;
    --tsan) TSAN=1 ;;
    --hcheck) HCHECK=1 ;;
    --faults) FAULTS=1 ;;
    --profile) PROFILE=1 ;;
    --check-regress) CHECK_REGRESS=1 ;;
    *) echo "usage: $0 [--full] [--tsan] [--hcheck] [--faults] [--profile] [--check-regress]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS" 2>&1 | tee test_output.txt

# Every bench binary supports --json=PATH: the human table still goes to
# stdout while one hurricane-bench-report/1 document lands in reports/.
REPORTS=build/bench/reports
rm -rf "$REPORTS"
mkdir -p "$REPORTS"
{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name="$(basename "$b")"
    echo "==== $name"
    # shellcheck disable=SC2086 # $SMOKE is intentionally word-split
    "$b" $SMOKE --json="$REPORTS/$name.json"
  done
  if [ "$FAULTS" = 1 ]; then
    echo "==== fig7_fault_tests --faults"
    # shellcheck disable=SC2086
    ./build/bench/fig7_fault_tests $SMOKE --faults --json="$REPORTS/fig7_fault_campaign.json"
  fi
} 2>&1 | tee bench_output.txt

# Merge and schema-check the per-bench reports into BENCH_RESULTS.json.
python3 - "$REPORTS" <<'EOF'
import glob, json, sys

reports = []
for path in sorted(glob.glob(sys.argv[1] + "/*.json")):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == "hurricane-bench-report/1", path
    for key in ("bench", "params", "series", "env"):
        assert key in doc, (path, key)
    for series in doc["series"]:
        assert set(series) >= {"name", "labels", "points"}, (path, series)
    reports.append(doc)

assert reports, "no bench reports were produced"
with open("BENCH_RESULTS.json", "w") as f:
    json.dump(reports, f, indent=1)
    f.write("\n")
print(f"BENCH_RESULTS.json: {len(reports)} reports, "
      f"{sum(len(r['series']) for r in reports)} series")
EOF

if [ "$CHECK_REGRESS" = 1 ]; then
  echo "==== check_regress: BENCH_RESULTS.json vs BENCH_BASELINE.json"
  python3 tools/check_regress.py
fi

if [ "$PROFILE" = 1 ]; then
  echo "==== fig5_lock_contention --profile (hprof pipeline)"
  PROFILE_DIR=build/bench/profile
  mkdir -p "$PROFILE_DIR"
  # shellcheck disable=SC2086
  ./build/bench/fig5_lock_contention $SMOKE \
      --profile="$PROFILE_DIR/fig5_lockprof.json" \
      --trace="$PROFILE_DIR/fig5_trace.json" > "$PROFILE_DIR/fig5_report.txt"
  tail -n +1 "$PROFILE_DIR/fig5_report.txt"
  # Surface the trace session's drop counters: a nonzero droppedSpans means
  # the overall event cap truncated the trace and downstream reports (hprof
  # queue depths, hwhy span exports) undercount accordingly.
  python3 - "$PROFILE_DIR/fig5_trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
spans = doc.get("droppedSpans", 0)
mem = doc.get("droppedMemoryEvents", 0)
print(f"trace drops: droppedSpans={spans} droppedMemoryEvents={mem}"
      + ("  (trace is complete)" if spans == 0 else "  (TRACE TRUNCATED)"))
EOF
  echo "==== hprof CLI on the exported lockprof + trace documents"
  ./build/tools/hprof "$PROFILE_DIR/fig5_lockprof.json"
  ./build/tools/hprof --json "$PROFILE_DIR/fig5_trace.json" > "$PROFILE_DIR/fig5_trace_report.json"
  echo "wrote $PROFILE_DIR/fig5_trace_report.json"
fi

if [ "$HCHECK" = 1 ]; then
  echo "==== hcheck exhaustive sweep (HCHECK_EXHAUSTIVE=1)"
  HCHECK_EXHAUSTIVE=1 ./build/tests/hcheck_tests
fi

if [ "$TSAN" = 1 ]; then
  cmake -B build-tsan -S . -DHSIM_SANITIZE=thread
  cmake --build build-tsan -j"$JOBS" --target hlock_tests
  ./build-tsan/tests/hlock_tests
fi
