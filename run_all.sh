#!/bin/sh
# Regenerates everything: build, full test suite, every bench table/figure.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then "$b"; fi
done 2>&1 | tee bench_output.txt
