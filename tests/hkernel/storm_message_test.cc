// Regression tests for the CallWithRetry storm watchdog's diagnostic.  The
// watchdog used to bump rpc_retry_storms silently, and the only breadcrumb a
// log could carry was the op code -- useless for a multi-machine mesh where
// the question is "which machine's handler is refusing us?".  The diagnostic
// must name the destination machine id (KernelConfig::machine_id) alongside
// the destination cluster/processor and the op.

#include <string>

#include <gtest/gtest.h>

#include "src/hkernel/kernel.h"
#include "src/hkernel/rpc.h"
#include "src/hsim/engine.h"
#include "src/hsim/machine.h"

namespace hkernel {
namespace {

TEST(StormMessageTest, DiagnosticNamesDestinationMachine) {
  const std::string diag = StormDiagnostic(/*machine_id=*/7, /*src=*/2, /*target=*/13,
                                           /*target_cluster=*/3, RpcOp::kProcDeposit,
                                           /*consecutive=*/16);
  EXPECT_NE(diag.find("machine=7"), std::string::npos) << diag;
  EXPECT_NE(diag.find("dst_proc=13"), std::string::npos) << diag;
  EXPECT_NE(diag.find("dst_cluster=3"), std::string::npos) << diag;
  EXPECT_NE(diag.find("src_proc=2"), std::string::npos) << diag;
  EXPECT_NE(diag.find("proc_deposit"), std::string::npos) << diag;
  EXPECT_NE(diag.find("consecutive_refusals=16"), std::string::npos) << diag;
}

TEST(StormMessageTest, DiagnosticDistinguishesMachines) {
  const std::string a =
      StormDiagnostic(0, 0, 4, 1, RpcOp::kGetPage, 16);
  const std::string b =
      StormDiagnostic(5, 0, 4, 1, RpcOp::kGetPage, 16);
  EXPECT_NE(a, b);
  EXPECT_NE(b.find("machine=5"), std::string::npos) << b;
}

// Behavioral check: a live storm (handler refusing with kWouldDeadlock past
// the threshold) emits the diagnostic on stderr with the configured machine
// id, exactly once per storm, and bumps the counter.
TEST(StormMessageTest, LiveStormEmitsMachineIdOnce) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  KernelConfig config;
  config.cluster_size = 4;
  config.machine_id = 9;
  config.rpc_storm_threshold = 3;
  // Keep the scripted storm short: retries back off toward this cap.
  config.rpc_retry_backoff = 512;
  KernelSystem system(&machine, config);

  // The aux handler refuses the first `threshold` attempts, then succeeds --
  // one full storm, then recovery.
  int refusals_left = config.rpc_storm_threshold;
  system.set_aux_handler(
      [&refusals_left](hsim::Processor&, RpcRequest& request) -> hsim::Task<void> {
        request.status =
            refusals_left-- > 0 ? RpcStatus::kWouldDeadlock : RpcStatus::kOk;
        co_return;
      });

  bool stop = false;
  for (hsim::ProcId p = 1; p < machine.num_processors(); ++p) {
    engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
  }
  engine.Spawn([](KernelSystem* sys, hsim::Machine* m, bool* stop_flag) -> hsim::Task<void> {
    hsim::Processor& p = m->processor(0);
    RpcRequest request;
    request.op = RpcOp::kProcDeposit;
    co_await sys->CallWithRetry(p, sys->PeerOf(p.id(), /*target_cluster=*/1), &request);
    EXPECT_EQ(request.status, RpcStatus::kOk);
    *stop_flag = true;
  }(&system, &machine, &stop));

  testing::internal::CaptureStderr();
  engine.RunUntilIdle();
  const std::string log = testing::internal::GetCapturedStderr();

  EXPECT_EQ(system.counters().rpc_retry_storms, 1u);
  EXPECT_NE(log.find("rpc retry storm"), std::string::npos) << log;
  EXPECT_NE(log.find("machine=9"), std::string::npos) << log;
  EXPECT_NE(log.find("proc_deposit"), std::string::npos) << log;
  // Escalation fires once per storm, not once per refusal past the threshold.
  EXPECT_EQ(log.find("rpc retry storm"), log.rfind("rpc retry storm")) << log;
}

}  // namespace
}  // namespace hkernel
