// Tests for the fault path: calibration points, replication, combining,
// reserve-bit serialization, reference counts, and unmapping.

#include "src/hkernel/kernel.h"

#include <gtest/gtest.h>

#include <string>

#include "src/hkernel/workloads.h"
#include "src/hprof/lock_site.h"
#include "src/hsim/engine.h"
#include "src/hsim/locks/reserve_bit.h"
#include "src/hsim/machine.h"

namespace hkernel {
namespace {

struct Rig {
  hsim::Engine engine;
  hsim::Machine machine;
  KernelSystem system;
  bool stop = false;

  explicit Rig(std::uint32_t cluster_size, hsim::LockKind kind = hsim::LockKind::kMcsH2)
      : machine(&engine, hsim::MachineConfig{}), system(&machine, [&] {
          KernelConfig c;
          c.cluster_size = cluster_size;
          c.lock_kind = kind;
          return c;
        }()) {}

  void IdleFrom(hsim::ProcId first) {
    for (hsim::ProcId p = first; p < machine.num_processors(); ++p) {
      engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
    }
  }
};

TEST(CalibrationTest, MatchesPaperReferencePoints) {
  CalibrationResult r = RunCalibration(hsim::LockKind::kMcsH2);
  // Paper: simple fault 160 us with 40 us of locking; null RPC 27 us;
  // cluster-wide lookup + replicate 88 us.  Within 20%.
  EXPECT_NEAR(r.fault_us, 160.0, 32.0);
  EXPECT_NEAR(r.fault_lock_us, 40.0, 8.0);
  EXPECT_NEAR(r.null_rpc_us, 27.0, 5.4);
  EXPECT_NEAR(r.replicate_us, 88.0, 17.6);
}

TEST(FaultTest, LocalFaultDoesNotReplicateOrRpc) {
  Rig rig(4);
  Program& prog = rig.system.CreateProgram();
  FaultOutcome out;
  rig.engine.Spawn([](Rig* r, Program* pr, FaultOutcome* o) -> hsim::Task<void> {
    co_await r->system.PageFault(r->machine.processor(0), *pr,
                                 KernelSystem::MakePage(0, 1), o);
  }(&rig, &prog, &out));
  rig.engine.RunUntilIdle();
  EXPECT_FALSE(out.replicated);
  EXPECT_EQ(rig.system.counters().rpcs, 0u);
  EXPECT_EQ(rig.system.counters().replications, 0u);
  EXPECT_GT(out.total, 0u);
  EXPECT_GT(out.lock_cycles, 0u);
  EXPECT_LT(out.lock_cycles, out.total);
}

TEST(FaultTest, RemoteFaultReplicatesOnceThenIsLocal) {
  Rig rig(4);
  rig.IdleFrom(0);
  Program& prog = rig.system.CreateProgram();
  FaultOutcome first;
  FaultOutcome second;
  rig.engine.Spawn([](Rig* r, Program* pr, FaultOutcome* f1,
                      FaultOutcome* f2) -> hsim::Task<void> {
    // Page homed on processor 4 (cluster 1); the faulting processor is in
    // cluster 0.
    const std::uint64_t page = KernelSystem::MakePage(4, 9);
    co_await r->system.PageFault(r->machine.processor(0), *pr, page, f1);
    co_await r->system.PageFault(r->machine.processor(0), *pr, page, f2);
    r->stop = true;
  }(&rig, &prog, &first, &second));
  rig.engine.RunUntilIdle();
  EXPECT_TRUE(first.replicated);
  EXPECT_FALSE(second.replicated);
  EXPECT_EQ(rig.system.counters().replications, 1u);
  EXPECT_GT(first.total, second.total);
  // The home cluster recorded cluster 0 as a replica holder.
  ClusterKernel& home = rig.system.cluster(1);
  EXPECT_GT(home.table().live(), 0u);
}

TEST(FaultTest, ClusterPeersCombineOnOneReplication) {
  // Four processors of cluster 0 fault simultaneously on the same remote
  // page: only one GET_PAGE replication happens; the others wait on the local
  // replica shell's reserve bit.
  Rig rig(4);
  rig.IdleFrom(0);
  Program& prog = rig.system.CreateProgram();
  int done = 0;
  for (hsim::ProcId p = 0; p < 4; ++p) {
    rig.engine.Spawn([](Rig* r, Program* pr, hsim::ProcId self, int* counter) -> hsim::Task<void> {
      co_await r->system.PageFault(r->machine.processor(self), *pr,
                                   KernelSystem::MakePage(/*home_proc=*/5, 3), nullptr);
      if (++*counter == 4) {
        r->stop = true;
      }
    }(&rig, &prog, p, &done));
  }
  rig.engine.RunUntilIdle();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(rig.system.counters().replications, 1u);
  EXPECT_GE(rig.system.counters().reserve_waits, 1u);
}

TEST(FaultTest, ReserveBitSerializesFaultsOnOnePage) {
  // All four processors of one cluster fault on the same local page: the
  // mapping work is serialized by the descriptor's reserve bit, so the
  // elapsed time covers everyone's map work back to back.
  Rig rig(4);
  rig.IdleFrom(0);
  Program& prog = rig.system.CreateProgram();
  int done = 0;
  for (hsim::ProcId p = 0; p < 4; ++p) {
    rig.engine.Spawn([](Rig* r, Program* pr, hsim::ProcId self, int* counter) -> hsim::Task<void> {
      co_await r->system.PageFault(r->machine.processor(self), *pr,
                                   KernelSystem::MakePage(0, 0), nullptr);
      if (++*counter == 4) {
        r->stop = true;
      }
    }(&rig, &prog, p, &done));
  }
  const hsim::Tick elapsed = rig.engine.RunUntilIdle();
  EXPECT_EQ(done, 4);
  EXPECT_GE(rig.system.counters().reserve_waits, 3u);
  // At least 4x the per-fault map work must have elapsed.
  KernelConfig cfg;
  EXPECT_GT(elapsed, 4 * cfg.fault_mapwork);
}

TEST(FaultTest, RefCountTracksMappings) {
  Rig rig(4);
  Program& prog = rig.system.CreateProgram();
  rig.engine.Spawn([](Rig* r, Program* pr) -> hsim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await r->system.PageFault(r->machine.processor(0), *pr,
                                   KernelSystem::MakePage(0, 5), nullptr);
    }
  }(&rig, &prog));
  rig.engine.RunUntilIdle();
  // Find the descriptor and check its (cluster-local) reference count.
  ClusterKernel& c = rig.system.cluster(0);
  bool checked = false;
  rig.engine.Spawn([](Rig* r, ClusterKernel* ck, bool* done) -> hsim::Task<void> {
    DescRef ref = co_await ck->table().Lookup(r->machine.processor(0),
                                              KernelSystem::MakePage(0, 5));
    EXPECT_NE(ref, kNilDesc);
    EXPECT_EQ(ck->table().desc(ref).ref_count->value, 3u);
    *done = true;
  }(&rig, &c, &checked));
  rig.engine.RunUntilIdle();
  EXPECT_TRUE(checked);
}

TEST(UnmapTest, InvalidatesRemoteReplicas) {
  Rig rig(4);
  rig.IdleFrom(0);
  Program& prog = rig.system.CreateProgram();
  rig.engine.Spawn([](Rig* r, Program* pr) -> hsim::Task<void> {
    const std::uint64_t page = KernelSystem::MakePage(0, 2);
    // Home fault on P0, replica faults from clusters 1 and 2.
    co_await r->system.PageFault(r->machine.processor(0), *pr, page, nullptr);
    co_await r->system.PageFault(r->machine.processor(1), *pr, page, nullptr);
    r->stop = true;
  }(&rig, &prog));
  rig.engine.RunUntilIdle();

  Rig rig2(4);
  rig2.IdleFrom(0);
  Program& prog2 = rig2.system.CreateProgram();
  bool checked = false;
  rig2.engine.Spawn([](Rig* r, Program* pr, bool* done) -> hsim::Task<void> {
    const std::uint64_t page = KernelSystem::MakePage(0, 2);
    FaultOutcome remote1;
    FaultOutcome remote2;
    co_await r->system.PageFault(r->machine.processor(4), *pr, page, &remote1);
    co_await r->system.PageFault(r->machine.processor(5), *pr, page, &remote2);
    EXPECT_TRUE(remote1.replicated);
    EXPECT_FALSE(remote2.replicated);  // cluster 1 already has the replica
    EXPECT_EQ(r->system.cluster(1).table().live(), 1u);

    // Unmap from the home cluster: the replica must disappear.
    co_await r->system.UnmapGlobal(r->machine.processor(0), page);
    EXPECT_EQ(r->system.cluster(1).table().live(), 0u);
    EXPECT_GE(r->system.counters().invalidations, 1u);

    // A new fault in cluster 1 re-replicates.
    FaultOutcome refault;
    co_await r->system.PageFault(r->machine.processor(4), *pr, page, &refault);
    EXPECT_TRUE(refault.replicated);
    *done = true;
    r->stop = true;
  }(&rig2, &prog2, &checked));
  rig2.engine.RunUntilIdle();
  EXPECT_TRUE(checked);
}

TEST(GlobalUpdateTest, BroadcastsToReplicas) {
  Rig rig(4);
  rig.IdleFrom(0);
  Program& prog = rig.system.CreateProgram();
  bool checked = false;
  rig.engine.Spawn([](Rig* r, Program* pr, bool* done) -> hsim::Task<void> {
    const std::uint64_t page = KernelSystem::MakePage(0, 3);
    co_await r->system.PageFault(r->machine.processor(0), *pr, page, nullptr);
    co_await r->system.PageFault(r->machine.processor(4), *pr, page, nullptr);
    co_await r->system.GlobalUpdate(r->machine.processor(0), page, 0xBEEF);

    DescRef home = co_await r->system.cluster(0).table().Lookup(r->machine.processor(0), page);
    DescRef replica = co_await r->system.cluster(1).table().Lookup(r->machine.processor(4), page);
    EXPECT_NE(home, kNilDesc);
    EXPECT_NE(replica, kNilDesc);
    EXPECT_EQ(r->system.cluster(0).table().desc(home).payload[0]->value, 0xBEEFu);
    EXPECT_EQ(r->system.cluster(1).table().desc(replica).payload[0]->value, 0xBEEFu);
    *done = true;
    r->stop = true;
  }(&rig, &prog, &checked));
  rig.engine.RunUntilIdle();
  EXPECT_TRUE(checked);
}

TEST(ProgramTest, RegionReplicasAreSpreadAcrossModules) {
  Rig rig(16);
  Program& p0 = rig.system.CreateProgram();
  Program& p1 = rig.system.CreateProgram();
  // Different programs' region structures live on different modules of the
  // (single) cluster, so independent programs do not collide.
  EXPECT_NE(p0.region_word(0, 0).home, p1.region_word(0, 0).home);
}

TEST(FaultTest, LockProfilerAttributesKernelLocks) {
  // An unprofiled baseline first: attaching sites must not move a single
  // simulated tick.
  hsim::Tick bare_total = 0;
  {
    Rig rig(4);
    Program& prog = rig.system.CreateProgram();
    FaultOutcome out;
    rig.engine.Spawn([](Rig* r, Program* pr, FaultOutcome* o) -> hsim::Task<void> {
      co_await r->system.PageFault(r->machine.processor(0), *pr,
                                   KernelSystem::MakePage(0, 1), o);
    }(&rig, &prog, &out));
    rig.engine.RunUntilIdle();
    bare_total = out.total;
  }

  Rig rig(4);
  hprof::SiteTable sites(16.0);
  rig.system.AttachLockProfiler(&sites);
  // 4 clusters: one page-table site each, then the two allocator depot locks
  // (descriptor arena and RPC packet pool), then one region site per cluster
  // for the program created after attachment.
  Program& prog = rig.system.CreateProgram();
  ASSERT_EQ(sites.size(), 10u);
  EXPECT_EQ(sites.site(0).name(), "cluster0/page-table");
  EXPECT_EQ(sites.site(4).name(), "kernel/desc-depot");
  EXPECT_EQ(sites.site(5).name(), "kernel/rpc-packet-depot");
  EXPECT_EQ(sites.site(6).name(), "program0/cluster0/region");

  FaultOutcome out;
  rig.engine.Spawn([](Rig* r, Program* pr, FaultOutcome* o) -> hsim::Task<void> {
    co_await r->system.PageFault(r->machine.processor(0), *pr,
                                 KernelSystem::MakePage(0, 1), o);
  }(&rig, &prog, &out));
  rig.engine.RunUntilIdle();
  EXPECT_EQ(out.total, bare_total);

  // The local fault's locking lands on cluster 0's sites; the wait/hold
  // histograms carry the simulated ticks the fault spent under the locks.
  std::uint64_t recorded = 0;
  std::uint64_t hold_ticks = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    recorded += sites.site(i).acquisitions();
    hold_ticks += sites.site(i).hold().sum();
    if (sites.site(i).acquisitions() > 0) {
      EXPECT_TRUE(sites.site(i).name().find("cluster0") != std::string::npos)
          << sites.site(i).name();
    }
  }
  EXPECT_GT(recorded, 0u);
  EXPECT_GT(hold_ticks, 0u);
}

}  // namespace
}  // namespace hkernel
