// Tests for program/process management and the Section 2.5 lessons: the
// family tree through process descriptors, parallel program destruction with
// its retries, message passing's interaction with the combined design, and
// the separate-tree alternative that avoids the retries.

#include "src/hkernel/process.h"

#include <gtest/gtest.h>

#include "src/hsim/engine.h"
#include "src/hsim/machine.h"

namespace hkernel {
namespace {

struct Rig {
  hsim::Engine engine;
  hsim::Machine machine;
  KernelSystem system;
  ProcessManager pm;
  bool stop = false;

  Rig(std::uint32_t cluster_size, TreePolicy policy)
      : machine(&engine, hsim::MachineConfig{}),
        system(&machine,
               [&] {
                 KernelConfig c;
                 c.cluster_size = cluster_size;
                 return c;
               }()),
        pm(&system, policy) {
    for (hsim::ProcId p = 0; p < machine.num_processors(); ++p) {
      engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
    }
  }
};

TEST(ProcessTable, InsertLookupRemove) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  ProcessTable table(&machine, 0, 32);
  engine.Spawn([](hsim::Processor* p, ProcessTable* t) -> hsim::Task<void> {
    const Pid a = ProcessManager::MakePid(0, 1);
    const Pid b = ProcessManager::MakePid(0, 2);
    const std::uint32_t ra = co_await t->Insert(*p, a);
    const std::uint32_t rb = co_await t->Insert(*p, b);
    EXPECT_NE(ra, 0u);
    EXPECT_NE(rb, 0u);
    EXPECT_EQ(co_await t->Lookup(*p, a), ra);
    EXPECT_EQ(co_await t->Lookup(*p, b), rb);
    EXPECT_EQ(co_await t->Lookup(*p, ProcessManager::MakePid(0, 3)), 0u);
    co_await t->Remove(*p, ra);
    EXPECT_EQ(co_await t->Lookup(*p, a), 0u);
    EXPECT_EQ(co_await t->Lookup(*p, b), rb);  // tombstone keeps the chain intact
  }(&machine.processor(0), &table));
  engine.RunUntilIdle();
  EXPECT_EQ(table.live(), 1u);
}

TEST(ProcessManager, CreateDestroyLocalFamily) {
  Rig rig(4, TreePolicy::kCombined);
  rig.engine.Spawn([](Rig* r) -> hsim::Task<void> {
    hsim::Processor& p = r->machine.processor(0);
    const Pid root = co_await r->pm.Create(p, 0, kNoPid);
    const Pid c1 = co_await r->pm.Create(p, 0, root);
    const Pid c2 = co_await r->pm.Create(p, 0, root);
    EXPECT_NE(root, kNoPid);
    EXPECT_NE(c1, c2);
    EXPECT_EQ(r->pm.live(0), 3u);
    co_await r->pm.Destroy(p, c1);
    co_await r->pm.Destroy(p, c2);
    co_await r->pm.Destroy(p, root);
    EXPECT_EQ(r->pm.live(0), 0u);
    r->stop = true;
  }(&rig));
  rig.engine.RunUntilIdle();
  EXPECT_EQ(rig.pm.stats().creates, 3u);
  EXPECT_EQ(rig.pm.stats().destroys, 3u);
}

TEST(ProcessManager, CrossClusterChildLinksToRemoteParent) {
  Rig rig(4, TreePolicy::kCombined);
  rig.engine.Spawn([](Rig* r) -> hsim::Task<void> {
    // Root in cluster 0; child created in cluster 1 links to it by RPC.
    const Pid root = co_await r->pm.Create(r->machine.processor(0), 0, kNoPid);
    const Pid child = co_await r->pm.Create(r->machine.processor(4), 4, root);
    EXPECT_EQ(r->pm.live(0), 1u);
    EXPECT_EQ(r->pm.live(1), 1u);
    // Destroying the child unlinks it from the remote parent.
    co_await r->pm.Destroy(r->machine.processor(4), child);
    EXPECT_EQ(r->pm.live(1), 0u);
    co_await r->pm.Destroy(r->machine.processor(0), root);
    r->stop = true;
  }(&rig));
  rig.engine.RunUntilIdle();
}

TEST(ProcessManager, MessagesAccumulateInMailbox) {
  Rig rig(4, TreePolicy::kCombined);
  rig.engine.Spawn([](Rig* r) -> hsim::Task<void> {
    const Pid target = co_await r->pm.Create(r->machine.processor(0), 0, kNoPid);
    // Local and remote senders.
    EXPECT_TRUE(co_await r->pm.SendMessage(r->machine.processor(1), target));
    EXPECT_TRUE(co_await r->pm.SendMessage(r->machine.processor(4), target));
    EXPECT_TRUE(co_await r->pm.SendMessage(r->machine.processor(8), target));
    EXPECT_EQ(co_await r->pm.ReadMailbox(r->machine.processor(0), target), 3u);
    r->stop = true;
  }(&rig));
  rig.engine.RunUntilIdle();
}

TEST(ProcessManager, SendToDeadProcessFails) {
  Rig rig(4, TreePolicy::kCombined);
  rig.engine.Spawn([](Rig* r) -> hsim::Task<void> {
    const Pid target = co_await r->pm.Create(r->machine.processor(0), 0, kNoPid);
    co_await r->pm.Destroy(r->machine.processor(0), target);
    EXPECT_FALSE(co_await r->pm.SendMessage(r->machine.processor(4), target));
    r->stop = true;
  }(&rig));
  rig.engine.RunUntilIdle();
}

// The Section 2.5 scenario: a program with children spread across clusters is
// destroyed all at once while messages still flow to the root.
template <TreePolicy kPolicy>
ProcessManager::Stats RunParallelDestruction() {
  Rig rig(4, kPolicy);
  struct Shared {
    Pid root = kNoPid;
    std::vector<Pid> children;
    int destroyed = 0;
    bool messaging_done = false;
  };
  auto shared = std::make_shared<Shared>();

  rig.engine.Spawn([](Rig* r, std::shared_ptr<Shared> s) -> hsim::Task<void> {
    hsim::Processor& p0 = r->machine.processor(0);
    s->root = co_await r->pm.Create(p0, 0, kNoPid);
    // One child per processor, spread across all 4 clusters.
    for (hsim::ProcId proc = 0; proc < 16; ++proc) {
      const Pid child = co_await r->pm.Create(r->machine.processor(proc), proc, s->root);
      s->children.push_back(child);
    }
    // Each child sends the root a few last messages (the combined design's
    // poison: these reserve the root's descriptor) and then dies -- all 16 at
    // about the same time.  The flows are sequential per processor, so no
    // RPCs are in flight when the last destroyer stops the run.
    for (hsim::ProcId proc = 0; proc < 16; ++proc) {
      r->engine.Spawn([](Rig* rr, std::shared_ptr<Shared> ss,
                         hsim::ProcId self) -> hsim::Task<void> {
        for (int i = 0; i < 6; ++i) {
          co_await rr->pm.SendMessage(rr->machine.processor(self), ss->root);
        }
        co_await rr->pm.Destroy(rr->machine.processor(self), ss->children[self]);
        if (++ss->destroyed == 16) {
          co_await rr->pm.Destroy(rr->machine.processor(0), ss->root);
          rr->stop = true;
        }
      }(r, s, proc));
    }
  }(&rig, shared));
  rig.engine.RunUntilIdle();

  EXPECT_EQ(shared->destroyed, 16);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(rig.pm.live(c), 0u) << "cluster " << c;
  }
  return rig.pm.stats();
}

TEST(ProcessManager, ParallelDestructionCombinedRetries) {
  const ProcessManager::Stats stats = RunParallelDestruction<TreePolicy::kCombined>();
  EXPECT_EQ(stats.destroys, 17u);
  // The paper's observation: with tree links inside the message-passing
  // descriptors, simultaneous destruction retries are common.
  EXPECT_GT(stats.unlink_retries, 0u);
}

TEST(ProcessManager, ParallelDestructionSeparateTreeAvoidsRetries) {
  const ProcessManager::Stats stats = RunParallelDestruction<TreePolicy::kSeparateTree>();
  EXPECT_EQ(stats.destroys, 17u);
  // The design lesson: a separate tree structure with tree-order locking
  // never needs to fail a remote unlink.
  EXPECT_EQ(stats.unlink_retries, 0u);
}

TEST(ProcessManager, Deterministic) {
  const ProcessManager::Stats a = RunParallelDestruction<TreePolicy::kCombined>();
  const ProcessManager::Stats b = RunParallelDestruction<TreePolicy::kCombined>();
  EXPECT_EQ(a.unlink_retries, b.unlink_retries);
  EXPECT_EQ(a.messages, b.messages);
}

}  // namespace
}  // namespace hkernel
