// Unit tests for the per-cluster page-descriptor hash table.

#include "src/hkernel/page_table.h"

#include <gtest/gtest.h>

#include "src/hsim/engine.h"
#include "src/hsim/locks/reserve_bit.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hkernel {
namespace {

class PageTableTest : public ::testing::Test {
 protected:
  PageTableTest()
      : machine_(&engine_, hsim::MachineConfig{}),
        table_(&machine_, {0}, /*num_bins=*/8, /*capacity=*/16) {}

  // Runs a table operation synchronously on processor 0.
  template <typename F>
  void Run(F&& f) {
    engine_.Spawn(f(&machine_.processor(0), &table_));
    engine_.RunUntilIdle();
  }

  hsim::Engine engine_;
  hsim::Machine machine_;
  PageHashTable table_;
};

TEST_F(PageTableTest, LookupMissesOnEmptyTable) {
  Run([](hsim::Processor* p, PageHashTable* t) -> hsim::Task<void> {
    EXPECT_EQ(co_await t->Lookup(*p, 42), kNilDesc);
  });
}

TEST_F(PageTableTest, InsertThenLookupHits) {
  Run([](hsim::Processor* p, PageHashTable* t) -> hsim::Task<void> {
    DescRef ref = co_await t->Insert(*p, 42);
    EXPECT_NE(ref, kNilDesc);
    EXPECT_EQ(co_await t->Lookup(*p, 42), ref);
    EXPECT_EQ(t->desc(ref).page->value, 42u);
  });
  EXPECT_EQ(table_.live(), 1u);
}

TEST_F(PageTableTest, ManyKeysWithChainCollisions) {
  // 12 keys in 8 bins force chains; all must be found.
  Run([](hsim::Processor* p, PageHashTable* t) -> hsim::Task<void> {
    for (std::uint64_t k = 100; k < 112; ++k) {
      EXPECT_NE(co_await t->Insert(*p, k), kNilDesc);
    }
    for (std::uint64_t k = 100; k < 112; ++k) {
      EXPECT_NE(co_await t->Lookup(*p, k), kNilDesc) << "key " << k;
    }
    EXPECT_EQ(co_await t->Lookup(*p, 99), kNilDesc);
    EXPECT_EQ(co_await t->Lookup(*p, 112), kNilDesc);
  });
  EXPECT_EQ(table_.live(), 12u);
}

TEST_F(PageTableTest, RemoveUnlinksFromChainMiddleAndHead) {
  Run([](hsim::Processor* p, PageHashTable* t) -> hsim::Task<void> {
    for (std::uint64_t k = 0; k < 12; ++k) {
      co_await t->Insert(*p, 200 + k);
    }
    // Remove half, in mixed order.
    for (std::uint64_t k : {3, 0, 11, 7, 5, 9}) {
      EXPECT_TRUE(co_await t->Remove(*p, 200 + k));
    }
    for (std::uint64_t k = 0; k < 12; ++k) {
      const bool removed = (k == 3 || k == 0 || k == 11 || k == 7 || k == 5 || k == 9);
      EXPECT_EQ(co_await t->Lookup(*p, 200 + k) == kNilDesc, removed) << "key " << k;
    }
  });
  EXPECT_EQ(table_.live(), 6u);
}

TEST_F(PageTableTest, RemoveMissingReturnsFalse) {
  Run([](hsim::Processor* p, PageHashTable* t) -> hsim::Task<void> {
    co_await t->Insert(*p, 1);
    EXPECT_FALSE(co_await t->Remove(*p, 2));
    EXPECT_TRUE(co_await t->Remove(*p, 1));
    EXPECT_FALSE(co_await t->Remove(*p, 1));
  });
}

TEST_F(PageTableTest, PoolIsTypeStableAcrossReuse) {
  // Freed descriptors are reused for descriptors only, and the reserve word
  // is left in a defined state -- a late spinner never observes garbage.
  Run([](hsim::Processor* p, PageHashTable* t) -> hsim::Task<void> {
    DescRef a = co_await t->Insert(*p, 7);
    hsim::SimWord* reserve = t->desc(a).reserve;
    EXPECT_TRUE(co_await t->Remove(*p, 7));
    // Fill the pool; the freed slot must be handed out again.
    bool reused = false;
    for (std::uint64_t k = 0; k < 16; ++k) {
      DescRef r = co_await t->Insert(*p, 1000 + k);
      if (r == a) {
        reused = true;
        EXPECT_EQ(t->desc(r).reserve, reserve);
      }
    }
    EXPECT_TRUE(reused);
    EXPECT_EQ(reserve->value, hsim::SimReserve::kFree);
  });
}

TEST_F(PageTableTest, PoolExhaustionReturnsNil) {
  Run([](hsim::Processor* p, PageHashTable* t) -> hsim::Task<void> {
    for (std::uint64_t k = 0; k < 16; ++k) {
      EXPECT_NE(co_await t->Insert(*p, k), kNilDesc);
    }
    EXPECT_EQ(co_await t->Insert(*p, 99), kNilDesc);
    // Freeing one slot makes insertion possible again.
    EXPECT_TRUE(co_await t->Remove(*p, 5));
    EXPECT_NE(co_await t->Insert(*p, 99), kNilDesc);
  });
}

TEST_F(PageTableTest, LookupCostGrowsWithChainLength) {
  // The table walks simulated memory: longer chains must take longer, which
  // is exactly what bounds how long the coarse lock is held.
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  PageHashTable small(&machine, {0}, /*num_bins=*/1, /*capacity=*/32);  // one chain
  hsim::Tick first = 0;
  hsim::Tick last = 0;
  engine.Spawn([](hsim::Processor* p, PageHashTable* t, hsim::Tick* f,
                  hsim::Tick* l) -> hsim::Task<void> {
    for (std::uint64_t k = 0; k < 16; ++k) {
      co_await t->Insert(*p, k);
    }
    hsim::Tick t0 = p->now();
    co_await t->Lookup(*p, 15);  // head of the chain (inserted last)
    *f = p->now() - t0;
    t0 = p->now();
    co_await t->Lookup(*p, 0);  // tail of the chain
    *l = p->now() - t0;
  }(&machine.processor(0), &small, &first, &last));
  engine.RunUntilIdle();
  EXPECT_GT(last, first * 5);
}

}  // namespace
}  // namespace hkernel
