// Tests for the optimistic deadlock-avoidance protocol (Section 2.3): remote
// handlers fail with kWouldDeadlock instead of spinning on reserve bits, the
// initiator retries, and the classic P1/P2 processor-resource deadlock cannot
// occur.

#include <memory>

#include <gtest/gtest.h>

#include "src/hkernel/kernel.h"
#include "src/hkernel/workloads.h"
#include "src/hsim/engine.h"
#include "src/hsim/machine.h"

namespace hkernel {
namespace {

struct Rig {
  hsim::Engine engine;
  hsim::Machine machine;
  KernelSystem system;
  bool stop = false;

  explicit Rig(std::uint32_t cluster_size)
      : machine(&engine, hsim::MachineConfig{}), system(&machine, [&] {
          KernelConfig c;
          c.cluster_size = cluster_size;
          return c;
        }()) {}

  void IdleFrom(hsim::ProcId first) {
    for (hsim::ProcId p = first; p < machine.num_processors(); ++p) {
      engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
    }
  }
};

TEST(DeadlockTest, GetPageRetriesWhileHomeDescriptorReserved) {
  // A home-cluster processor holds the descriptor's reserve bit (mid-fault)
  // while a remote cluster tries to replicate: the handler must refuse and
  // the remote fault must still complete once the bit clears.
  Rig rig(4);
  rig.IdleFrom(0);
  Program& prog = rig.system.CreateProgram();
  const std::uint64_t page = KernelSystem::MakePage(0, 1);
  int done = 0;

  // Home processor faults continuously for a while, keeping the reserve bit
  // hot.
  rig.engine.Spawn([](Rig* r, Program* pr, std::uint64_t pg, int* counter) -> hsim::Task<void> {
    for (int i = 0; i < 12; ++i) {
      co_await r->system.PageFault(r->machine.processor(0), *pr, pg, nullptr);
    }
    if (++*counter == 2) {
      r->stop = true;
    }
  }(&rig, &prog, page, &done));

  FaultOutcome remote;
  rig.engine.Spawn([](Rig* r, Program* pr, std::uint64_t pg, FaultOutcome* out,
                      int* counter) -> hsim::Task<void> {
    co_await r->system.PageFault(r->machine.processor(4), *pr, pg, out);
    if (++*counter == 2) {
      r->stop = true;
    }
  }(&rig, &prog, page, &remote, &done));

  rig.engine.RunUntilIdle();
  EXPECT_EQ(done, 2);
  EXPECT_TRUE(remote.replicated);
  // At least one kWouldDeadlock refusal happened (the home proc held the bit
  // most of the time).
  EXPECT_GE(rig.system.counters().rpc_would_deadlock, 1u);
}

TEST(DeadlockTest, InvalidateRetriesWhileReplicaReserved) {
  // The unmapper broadcasts an invalidation while a processor in the replica
  // cluster is mid-fault on that very page: the handler refuses, the
  // unmapper retries, and both complete.
  Rig rig(4);
  rig.IdleFrom(0);
  Program& prog = rig.system.CreateProgram();
  const std::uint64_t page = KernelSystem::MakePage(0, 7);
  bool finished = false;

  // Shared countdown must outlive both coroutines (a stack local would be
  // destroyed with whichever frame finishes first).
  auto remaining = std::make_shared<int>(2);
  rig.engine.Spawn([](Rig* r, Program* pr, std::uint64_t pg, bool* done,
                      std::shared_ptr<int> rem) -> hsim::Task<void> {
    // Establish the replica in cluster 1.
    co_await r->system.PageFault(r->machine.processor(4), *pr, pg, nullptr);
    // Cluster-1 processors hammer the page while the home cluster unmaps.
    auto hammer = [](Rig* rr, Program* pp, std::uint64_t page_id, hsim::ProcId self,
                     std::shared_ptr<int> rm) -> hsim::Task<void> {
      for (int i = 0; i < 8; ++i) {
        co_await rr->system.PageFault(rr->machine.processor(self), *pp, page_id, nullptr);
      }
      if (--*rm == 0) {
        rr->stop = true;
      }
    };
    r->engine.Spawn(hammer(r, pr, pg, 5, rem));
    co_await r->system.UnmapGlobal(r->machine.processor(0), pg);
    *done = true;
    if (--*rem == 0) {
      r->stop = true;
    }
  }(&rig, &prog, page, &finished, remaining));

  rig.engine.RunUntilIdle();
  EXPECT_TRUE(finished);
}

TEST(DeadlockTest, ConcurrentCrossClusterReplicationTerminates) {
  // Every cluster replicates pages homed in every other cluster, all at once:
  // the i-th -> i-th RPC routing means processors receive GET_PAGE requests
  // while they are themselves blocked in CallWithRetry.  The optimistic
  // protocol (fail + retry, service while blocked) must let all faults
  // complete.
  Rig rig(4);
  rig.IdleFrom(0);  // processors must stay reachable after their driver ends
  Program& prog = rig.system.CreateProgram();
  int done = 0;
  for (hsim::ProcId p = 0; p < 16; ++p) {
    rig.engine.Spawn([](Rig* r, Program* pr, hsim::ProcId self, int* counter) -> hsim::Task<void> {
      // Fault on a page homed in the "next" cluster, then the one after.
      const std::uint32_t my_cluster = self / 4;
      for (std::uint32_t hop = 1; hop < 4; ++hop) {
        const hsim::ProcId home_proc = ((my_cluster + hop) % 4) * 4 + (self % 4);
        co_await r->system.PageFault(r->machine.processor(self), *pr,
                                     KernelSystem::MakePage(home_proc, 0), nullptr);
      }
      if (++*counter == 16) {
        r->stop = true;
      }
    }(&rig, &prog, p, &done));
  }
  rig.engine.RunUntilIdle();
  EXPECT_EQ(done, 16);
  EXPECT_EQ(rig.system.counters().replications, 48u);  // 16 procs x 3 remote pages
}

TEST(DeadlockTest, SharedWorkloadWithUnmapsTerminates) {
  // End-to-end: the full shared-fault stress (faults + barrier + global
  // unmap) across 4 clusters terminates and keeps its books consistent.
  FaultTestParams params;
  params.cluster_size = 4;
  params.active_procs = 16;
  params.pages = 3;
  params.iterations = 3;
  params.warmup = 1;
  FaultTestResult r = RunSharedFaultTest(params);
  EXPECT_EQ(r.latency.count(), 16u * 3u * 3u);
  EXPECT_EQ(r.counters.unmaps, 4u * 3u);  // pages x (warmup + iterations)
  EXPECT_GT(r.counters.replications, 0u);
}

TEST(DeadlockTest, RetriesAreRareInUncontendedReplication) {
  // Optimistic locking's premise: retries are seldom needed in the common
  // case (Section 2.5).
  Rig rig(4);
  rig.IdleFrom(0);
  Program& prog = rig.system.CreateProgram();
  rig.engine.Spawn([](Rig* r, Program* pr) -> hsim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await r->system.PageFault(r->machine.processor(0), *pr,
                                   KernelSystem::MakePage(/*home_proc=*/4 + (i % 4), i),
                                   nullptr);
    }
    r->stop = true;
  }(&rig, &prog));
  rig.engine.RunUntilIdle();
  EXPECT_EQ(rig.system.counters().replications, 10u);
  EXPECT_EQ(rig.system.counters().rpc_would_deadlock, 0u);
}

}  // namespace
}  // namespace hkernel
