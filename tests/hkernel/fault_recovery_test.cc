// Tests for the RPC transport-recovery protocol under an adversarial
// transport (hsim::FaultPlan): dropped requests and replies recover via
// timeout-and-retransmit, duplicates are applied exactly once, the counters
// reconcile against what the plan injected, and faulted runs are
// deterministic under the plan's seed.

#include <gtest/gtest.h>

#include "src/hkernel/kernel.h"
#include "src/hkernel/process.h"
#include "src/hkernel/workloads.h"
#include "src/hsim/engine.h"
#include "src/hsim/fault.h"
#include "src/hsim/machine.h"

namespace hkernel {
namespace {

struct Rig {
  hsim::Engine engine;
  hsim::Machine machine;
  KernelSystem system;
  bool stop = false;

  explicit Rig(const hsim::FaultConfig& faults, std::uint32_t cluster_size = 4)
      : machine(&engine, hsim::MachineConfig{}), system(&machine, [cluster_size] {
          KernelConfig c;
          c.cluster_size = cluster_size;
          return c;
        }()) {
    machine.set_fault_plan(faults);
  }

  void IdleAllExcept(std::initializer_list<hsim::ProcId> busy) {
    for (hsim::ProcId p = 0; p < machine.num_processors(); ++p) {
      bool is_busy = false;
      for (hsim::ProcId b : busy) {
        is_busy |= (b == p);
      }
      if (!is_busy) {
        engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
      }
    }
  }
};

// Drives one NullRpc from processor 0 to cluster 1, then lingers for `grace`
// ticks (servicing its own interrupts) so tail packets -- late duplicates,
// cached-reply retransmits -- drain before the idle loops wind down.
hsim::Task<void> DriveOneNullRpc(Rig* rig, hsim::Tick grace) {
  hsim::Processor& p = rig->machine.processor(0);
  co_await rig->system.NullRpc(p, /*target_cluster=*/1);
  const hsim::Tick deadline = p.now() + grace;
  CpuKernel& k = rig->system.cpu(0);
  while (p.now() < deadline) {
    co_await k.IrqPoint(p);
    co_await p.Compute(64);
  }
  rig->stop = true;
}

TEST(FaultRecoveryTest, DroppedRequestIsRetransmitted) {
  hsim::FaultConfig faults;
  faults.force_drop_requests = 1;
  Rig rig(faults);
  rig.IdleAllExcept({0});
  rig.engine.Spawn(DriveOneNullRpc(&rig, /*grace=*/1024));
  rig.engine.RunUntilIdle();

  const KernelSystem::Counters& c = rig.system.counters();
  EXPECT_EQ(c.rpcs, 1u);
  EXPECT_EQ(c.rpc_ops_applied, 1u);  // exact-once despite the loss
  EXPECT_GE(c.rpc_retransmits, 1u);
  EXPECT_EQ(rig.machine.fault_plan()->counters().requests_dropped, 1u);
}

TEST(FaultRecoveryTest, DroppedReplyIsRecoveredFromCache) {
  hsim::FaultConfig faults;
  faults.force_drop_replies = 1;
  Rig rig(faults);
  rig.IdleAllExcept({0});
  rig.engine.Spawn(DriveOneNullRpc(&rig, /*grace=*/1024));
  rig.engine.RunUntilIdle();

  const KernelSystem::Counters& c = rig.system.counters();
  EXPECT_EQ(c.rpcs, 1u);
  // The handler ran exactly once; the retransmit hit the dedup window and was
  // answered from the cached reply instead of being re-applied.
  EXPECT_EQ(c.rpc_ops_applied, 1u);
  EXPECT_GE(c.rpc_retransmits, 1u);
  EXPECT_GE(c.rpc_dup_requests, 1u);
  EXPECT_EQ(rig.machine.fault_plan()->counters().replies_dropped, 1u);
}

TEST(FaultRecoveryTest, DuplicatedRequestIsAppliedOnce) {
  hsim::FaultConfig faults;
  faults.force_dup_requests = 1;
  faults.max_extra_delay = 256;
  Rig rig(faults);
  rig.IdleAllExcept({0});
  // Grace long enough for the duplicate's extra delay plus its (discarded)
  // cached-reply echo to drain.
  rig.engine.Spawn(DriveOneNullRpc(&rig, /*grace=*/4096));
  rig.engine.RunUntilIdle();

  const KernelSystem::Counters& c = rig.system.counters();
  const hsim::FaultPlan::Counters& t = rig.machine.fault_plan()->counters();
  EXPECT_EQ(c.rpcs, 1u);
  EXPECT_EQ(c.rpc_ops_applied, 1u);
  // Duplicates detected == duplicates injected (the scripted dup, no more).
  EXPECT_EQ(t.requests_duplicated, 1u);
  EXPECT_EQ(c.rpc_dup_requests, t.requests_duplicated);
  // The dedup path re-sent the cached reply; the initiator discarded it.
  EXPECT_EQ(c.rpc_dup_replies, 1u);
  // Nothing left sitting in any inbox.
  for (hsim::ProcId p = 0; p < rig.machine.num_processors(); ++p) {
    EXPECT_EQ(rig.system.cpu(p).backlog(), 0u);
  }
}

TEST(FaultRecoveryTest, DuplicatedReplyIsDiscardedOnce) {
  hsim::FaultConfig faults;
  faults.force_dup_replies = 1;
  faults.max_extra_delay = 256;
  Rig rig(faults);
  rig.IdleAllExcept({0});
  rig.engine.Spawn(DriveOneNullRpc(&rig, /*grace=*/4096));
  rig.engine.RunUntilIdle();

  const KernelSystem::Counters& c = rig.system.counters();
  const hsim::FaultPlan::Counters& t = rig.machine.fault_plan()->counters();
  EXPECT_EQ(c.rpcs, 1u);
  EXPECT_EQ(c.rpc_ops_applied, 1u);
  EXPECT_EQ(t.replies_duplicated, 1u);
  EXPECT_EQ(c.rpc_dup_replies, t.replies_duplicated);
}

// Message deposit is not idempotent: a re-applied kProcDeposit would inflate
// the mailbox count.  Under 10% drop + 10% duplication on both legs, every
// message must still land exactly once.
TEST(FaultRecoveryTest, NonIdempotentDepositLandsExactlyOnce) {
  hsim::FaultConfig faults;
  faults.drop_request = 0.10;
  faults.drop_reply = 0.10;
  faults.dup_request = 0.10;
  faults.dup_reply = 0.10;
  Rig rig(faults);
  ProcessManager manager(&rig.system, TreePolicy::kCombined);
  constexpr int kMessages = 24;

  Pid pid = kNoPid;
  bool created = false;
  // The target process lives in cluster 1; Create must run there.
  rig.engine.Spawn([](Rig* r, ProcessManager* pm, Pid* out, bool* flag) -> hsim::Task<void> {
    *out = co_await pm->Create(r->machine.processor(4), /*home_proc=*/4, kNoPid);
    *flag = true;
    co_await r->system.IdleLoop(r->machine.processor(4), &r->stop);
  }(&rig, &manager, &pid, &created));

  std::uint64_t mailbox = 0;
  rig.engine.Spawn([](Rig* r, ProcessManager* pm, const Pid* pid_ptr, const bool* flag,
                      std::uint64_t* out) -> hsim::Task<void> {
    hsim::Processor& p = r->machine.processor(0);
    CpuKernel& k = r->system.cpu(0);
    while (!*flag) {
      co_await k.IrqPoint(p);
      co_await p.Compute(64);
    }
    for (int i = 0; i < kMessages; ++i) {
      const bool ok = co_await pm->SendMessage(p, *pid_ptr);
      EXPECT_TRUE(ok);
    }
    // Grace drain for tail duplicates, then read the mailbox via RPC.
    for (int i = 0; i < 96; ++i) {
      co_await k.IrqPoint(p);
      co_await p.Compute(64);
    }
    *out = co_await pm->ReadMailbox(p, *pid_ptr);
    r->stop = true;
  }(&rig, &manager, &pid, &created, &mailbox));

  rig.IdleAllExcept({0, 4});
  rig.engine.RunUntilIdle();

  EXPECT_TRUE(created);
  EXPECT_EQ(mailbox, static_cast<std::uint64_t>(kMessages));
  // The hard exact-once invariant, whatever mix of faults was injected.
  const KernelSystem::Counters& c = rig.system.counters();
  EXPECT_EQ(c.rpc_ops_applied, c.rpcs);
  EXPECT_GT(rig.machine.fault_plan()->counters().dropped() +
                rig.machine.fault_plan()->counters().duplicated(),
            0u)
      << "fault plan injected nothing; the test exercised no recovery path";
}

FaultTestParams SweepParams(double rate, std::uint64_t seed) {
  FaultTestParams params;
  params.cluster_size = 4;
  params.active_procs = 8;
  params.pages = 2;
  params.iterations = 4;
  params.warmup = 1;
  params.faults.drop_request = rate;
  params.faults.drop_reply = rate;
  params.faults.dup_request = rate;
  params.faults.dup_reply = rate;
  params.faults.seed = seed;
  return params;
}

// The fig7 shared workload (fault/barrier/unmap rounds, cross-cluster RPCs on
// every fault) completes with exact-once application at 2% and 10% fault
// rates on both legs.
TEST(FaultRecoveryTest, SharedWorkloadSurvivesFaultSweep) {
  for (double rate : {0.02, 0.10}) {
    FaultTestResult result = RunSharedFaultTest(SweepParams(rate, /*seed=*/0x5eed));
    // All rounds completed: every processor recorded every measured fault.
    EXPECT_EQ(result.latency.count(), 8u * 2u * 4u) << "rate " << rate;
    // Exact-once: every issued RPC was applied exactly once.
    EXPECT_EQ(result.counters.rpc_ops_applied, result.counters.rpcs) << "rate " << rate;
    EXPECT_GT(result.transport.dropped() + result.transport.duplicated(), 0u)
        << "rate " << rate;
  }
}

// Same seed, same parameters: a faulted run replays bit-identically.
TEST(FaultRecoveryTest, FaultedRunsAreDeterministicUnderSeed) {
  const FaultTestParams params = SweepParams(0.10, /*seed=*/0xfeedULL);
  FaultTestResult a = RunSharedFaultTest(params);
  FaultTestResult b = RunSharedFaultTest(params);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.mean_us(), b.latency.mean_us());
  EXPECT_EQ(a.counters.rpcs, b.counters.rpcs);
  EXPECT_EQ(a.counters.rpc_retransmits, b.counters.rpc_retransmits);
  EXPECT_EQ(a.counters.rpc_dup_requests, b.counters.rpc_dup_requests);
  EXPECT_EQ(a.counters.rpc_dup_replies, b.counters.rpc_dup_replies);
  EXPECT_EQ(a.transport.requests_seen, b.transport.requests_seen);
  EXPECT_EQ(a.transport.dropped(), b.transport.dropped());
  EXPECT_EQ(a.transport.duplicated(), b.transport.duplicated());

  // A different seed perturbs the transport (sanity check that the plan is
  // actually consulted).
  FaultTestParams other = params;
  other.faults.seed = 0xbeefULL;
  FaultTestResult c = RunSharedFaultTest(other);
  EXPECT_NE(a.transport.dropped() + a.transport.duplicated() + a.duration,
            c.transport.dropped() + c.transport.duplicated() + c.duration);
}

}  // namespace
}  // namespace hkernel
