// Parameterized sweep over the kernel configuration space: both deadlock
// protocols x several cluster sizes x both coarse-lock families, each run
// through a small shared-fault workload, checking the invariants that must
// hold regardless of configuration, plus protocol-specific expectations.

#include <tuple>

#include <gtest/gtest.h>

#include "src/hkernel/workloads.h"

namespace hkernel {
namespace {

using Param = std::tuple<DeadlockProtocol, std::uint32_t /*cluster size*/, hsim::LockKind>;

class KernelConfigSweep : public ::testing::TestWithParam<Param> {};

TEST_P(KernelConfigSweep, SharedWorkloadInvariants) {
  const auto [protocol, cluster_size, lock_kind] = GetParam();
  FaultTestParams params;
  params.protocol = protocol;
  params.cluster_size = cluster_size;
  params.lock_kind = lock_kind;
  params.active_procs = 8;
  params.pages = 2;
  params.iterations = 2;
  params.warmup = 1;
  const FaultTestResult r = RunSharedFaultTest(params);

  // Every fault of every measured round completed and was recorded.
  EXPECT_EQ(r.latency.count(), 8u * 2u * 2u);
  // Every round unmapped every page.
  EXPECT_EQ(r.counters.unmaps, 2u * 3u);
  // Faults are never cheaper than the uncontended reference.
  EXPECT_GT(r.latency.min(), hsim::UsToTicks(100));
  // Only the optimistic protocol's reserved shell can combine, so only the
  // pessimistic protocol can produce redundant fetches.
  if (protocol == DeadlockProtocol::kOptimistic) {
    EXPECT_EQ(r.counters.redundant_rpcs, 0u);
  }
  // Multi-cluster runs replicate; single-cluster runs never RPC.
  const std::uint32_t clusters = (8 + cluster_size - 1) / cluster_size;
  if (clusters > 1) {
    EXPECT_GT(r.counters.replications, 0u);
  } else {
    EXPECT_EQ(r.counters.rpcs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelConfigSweep,
    ::testing::Combine(::testing::Values(DeadlockProtocol::kOptimistic,
                                         DeadlockProtocol::kPessimistic),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values(hsim::LockKind::kMcsH2, hsim::LockKind::kSpin35us)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name =
          std::get<0>(info.param) == DeadlockProtocol::kOptimistic ? "opt" : "pess";
      name += "_cs" + std::to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) == hsim::LockKind::kMcsH2 ? "_dl" : "_spin";
      return name;
    });

TEST(PessimisticProtocol, BurstsProduceRedundantFetches) {
  // Four processors of one cluster fault on the same remote page at once.
  // The optimistic shell combines them into one fetch; the pessimistic
  // protocol cannot, so at least one redundant fetch happens.
  for (DeadlockProtocol protocol :
       {DeadlockProtocol::kOptimistic, DeadlockProtocol::kPessimistic}) {
    hsim::Engine engine;
    hsim::Machine machine(&engine, hsim::MachineConfig{});
    KernelConfig config;
    config.cluster_size = 4;
    config.protocol = protocol;
    KernelSystem system(&machine, config);
    bool stop = false;
    for (hsim::ProcId p = 4; p < machine.num_processors(); ++p) {
      engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
    }
    Program& prog = system.CreateProgram();
    int done = 0;
    for (hsim::ProcId p = 0; p < 4; ++p) {
      engine.Spawn([](KernelSystem* sys, Program* pr, hsim::Processor* proc, int* counter,
                      bool* stop_flag) -> hsim::Task<void> {
        co_await sys->PageFault(*proc, *pr, KernelSystem::MakePage(/*home_proc=*/5, 1),
                                nullptr);
        if (++*counter == 4) {
          *stop_flag = true;
        }
      }(&system, &prog, &machine.processor(p), &done, &stop));
    }
    engine.RunUntilIdle();
    EXPECT_EQ(done, 4);
    if (protocol == DeadlockProtocol::kOptimistic) {
      EXPECT_EQ(system.counters().replications, 1u);
      EXPECT_EQ(system.counters().redundant_rpcs, 0u);
    } else {
      EXPECT_GE(system.counters().redundant_rpcs, 1u);
    }
  }
}

}  // namespace
}  // namespace hkernel
