// Tests for the RPC layer: routing, latency, the software interrupt gate,
// deferred work, and the processor-as-resource property (serving incoming
// requests while blocked on an outgoing call).

#include "src/hkernel/rpc.h"

#include <gtest/gtest.h>

#include "src/hkernel/kernel.h"
#include "src/hkernel/workloads.h"
#include "src/hsim/engine.h"
#include "src/hsim/machine.h"

namespace hkernel {
namespace {

struct Rig {
  hsim::Engine engine;
  hsim::Machine machine;
  KernelSystem system;
  bool stop = false;

  explicit Rig(std::uint32_t cluster_size = 4)
      : machine(&engine, hsim::MachineConfig{}),
        system(&machine, [cluster_size] {
          KernelConfig c;
          c.cluster_size = cluster_size;
          return c;
        }()) {}

  void IdleAllExcept(std::initializer_list<hsim::ProcId> busy) {
    for (hsim::ProcId p = 0; p < machine.num_processors(); ++p) {
      bool is_busy = false;
      for (hsim::ProcId b : busy) {
        is_busy |= (b == p);
      }
      if (!is_busy) {
        engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
      }
    }
  }
};

TEST(RpcTest, PeerRoutingIsIthToIth) {
  Rig rig(4);
  // Processor 6 is the 2nd processor of cluster 1; its peer in cluster 3 is
  // the 2nd processor of cluster 3.
  EXPECT_EQ(rig.system.PeerOf(6, 3), 14u);
  EXPECT_EQ(rig.system.PeerOf(6, 0), 2u);
  EXPECT_EQ(rig.system.PeerOf(0, 1), 4u);
}

TEST(RpcTest, NullRpcRoundTripNearPaperValue) {
  Rig rig(4);
  rig.IdleAllExcept({0});
  double us = 0;
  rig.engine.Spawn([](Rig* r, double* out) -> hsim::Task<void> {
    const hsim::Tick t0 = r->machine.processor(0).now();
    for (int i = 0; i < 8; ++i) {
      co_await r->system.NullRpc(r->machine.processor(0), 1);
    }
    *out = hsim::TicksToUs(r->machine.processor(0).now() - t0) / 8;
    r->stop = true;
  }(&rig, &us));
  rig.engine.RunUntilIdle();
  // Paper: ~27 us.
  EXPECT_GT(us, 20.0);
  EXPECT_LT(us, 34.0);
}

// Builds a wire packet as the transport would: a self-contained request copy
// from a foreign initiator.
RpcPacket MakePacket(std::uint64_t seq, hsim::ProcId src = 0) {
  RpcPacket packet;
  packet.seq = seq;
  packet.op = RpcOp::kNull;
  packet.src_proc = src;
  return packet;
}

TEST(RpcTest, MaskDefersWorkUntilUnmask) {
  Rig rig(4);
  CpuKernel& target = rig.system.cpu(4);
  hsim::Processor& tp = rig.machine.processor(4);

  target.Mask();
  target.Deliver(MakePacket(1));
  // An interrupt point with the gate closed defers the work.
  rig.engine.Spawn([](CpuKernel* k, hsim::Processor* p) -> hsim::Task<void> {
    co_await k->IrqPoint(*p);
  }(&target, &tp));
  rig.engine.RunUntilIdle();
  EXPECT_EQ(target.deferred_count(), 1u);
  EXPECT_EQ(target.handled(), 0u);

  // Opening the gate and polling runs the deferred handler.
  target.Unmask();
  rig.engine.Spawn([](CpuKernel* k, hsim::Processor* p) -> hsim::Task<void> {
    co_await k->IrqPoint(*p);
  }(&target, &tp));
  rig.engine.RunUntilIdle();
  EXPECT_EQ(target.handled(), 1u);
  EXPECT_EQ(target.backlog(), 0u);
}

TEST(RpcTest, IrqBatchBoundsWorkPerPoint) {
  Rig rig(4);
  CpuKernel& target = rig.system.cpu(4);
  hsim::Processor& tp = rig.machine.processor(4);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    target.Deliver(MakePacket(seq));
  }
  rig.engine.Spawn([](CpuKernel* k, hsim::Processor* p) -> hsim::Task<void> {
    co_await k->IrqPoint(*p);
  }(&target, &tp));
  rig.engine.RunUntilIdle();
  // Only irq_batch (2) requests are serviced per interrupt point: the
  // interrupted kernel path must be able to make progress under a storm.
  EXPECT_EQ(target.handled(), 2u);
}

TEST(RpcTest, DuplicateDeliveriesAreAppliedOnce) {
  Rig rig(4);
  CpuKernel& target = rig.system.cpu(4);
  hsim::Processor& tp = rig.machine.processor(4);
  // Two copies of seq 1 (a transport duplicate) and a stale re-delivery after
  // seq 2 completed.
  target.Deliver(MakePacket(1));
  target.Deliver(MakePacket(1));
  target.Deliver(MakePacket(2));
  target.Deliver(MakePacket(1));
  rig.engine.Spawn([](CpuKernel* k, hsim::Processor* p) -> hsim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      co_await k->IrqPoint(*p);
    }
  }(&target, &tp));
  rig.engine.RunUntilIdle();
  EXPECT_EQ(target.handled(), 2u);
  EXPECT_EQ(rig.system.counters().rpc_ops_applied, 2u);
  EXPECT_EQ(rig.system.counters().rpc_dup_requests, 2u);
  EXPECT_EQ(target.backlog(), 0u);
}

TEST(RpcTest, CrossCallingProcessorsDoNotDeadlock) {
  // P0 (cluster 0) and P4 (cluster 1) call each other at the same time.  Both
  // service their inbox while waiting for their own reply: the processor is a
  // lockable resource and refusing to serve while blocked is the deadlock of
  // Section 2.3.
  Rig rig(4);
  rig.IdleAllExcept({0, 4});
  int done = 0;
  auto call = [](Rig* r, hsim::ProcId self, std::uint32_t target_cluster,
                 int* counter) -> hsim::Task<void> {
    co_await r->system.NullRpc(r->machine.processor(self), target_cluster);
    if (++*counter == 2) {
      r->stop = true;
    }
  };
  rig.engine.Spawn(call(&rig, 0, 1, &done));
  rig.engine.Spawn(call(&rig, 4, 0, &done));
  rig.engine.RunUntilIdle();
  EXPECT_EQ(done, 2);
}

TEST(RpcTest, RpcToBusyProcessorWaitsForInterruptPoint) {
  // The target computes without interrupt points for a while; the RPC is
  // delayed accordingly but not lost.
  Rig rig(4);
  rig.IdleAllExcept({0, 4});
  hsim::Tick reply_at = 0;
  constexpr hsim::Tick kBusy = 4000;
  rig.engine.Spawn([](Rig* r) -> hsim::Task<void> {
    // P4 is deaf for kBusy cycles, then starts polling.
    hsim::Processor& p = r->machine.processor(4);
    co_await p.Compute(kBusy);
    co_await r->system.IdleLoop(p, &r->stop);
  }(&rig));
  rig.engine.Spawn([](Rig* r, hsim::Tick* out) -> hsim::Task<void> {
    co_await r->system.NullRpc(r->machine.processor(0), 1);
    *out = r->machine.processor(0).now();
    r->stop = true;
  }(&rig, &reply_at));
  rig.engine.RunUntilIdle();
  EXPECT_GE(reply_at, kBusy);
}

}  // namespace
}  // namespace hkernel
