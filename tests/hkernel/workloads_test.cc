// End-to-end tests of the Section 4.2 stress harnesses: determinism, shape
// properties that the paper reports, and the barrier.

#include "src/hkernel/workloads.h"

#include <gtest/gtest.h>

#include "src/hsim/engine.h"
#include "src/hsim/machine.h"

namespace hkernel {
namespace {

TEST(WorkloadTest, IndependentTestIsDeterministic) {
  FaultTestParams params;
  params.active_procs = 6;
  params.warmup_time = hsim::UsToTicks(500);
  params.measure_time = hsim::UsToTicks(4000);
  FaultTestResult a = RunIndependentFaultTest(params);
  FaultTestResult b = RunIndependentFaultTest(params);
  EXPECT_EQ(a.latency.samples(), b.latency.samples());
  EXPECT_EQ(a.duration, b.duration);
}

TEST(WorkloadTest, SharedTestIsDeterministic) {
  FaultTestParams params;
  params.cluster_size = 8;
  params.active_procs = 8;
  params.pages = 2;
  params.iterations = 2;
  params.warmup = 1;
  FaultTestResult a = RunSharedFaultTest(params);
  FaultTestResult b = RunSharedFaultTest(params);
  EXPECT_EQ(a.latency.samples(), b.latency.samples());
}

TEST(WorkloadTest, IndependentLatencyRisesWithProcessors) {
  auto run = [](std::uint32_t p) {
    FaultTestParams params;
    params.active_procs = p;
    params.warmup_time = hsim::UsToTicks(1000);
    params.measure_time = hsim::UsToTicks(8000);
    return RunIndependentFaultTest(params).little_response_us();
  };
  const double p1 = run(1);
  const double p16 = run(16);
  EXPECT_GT(p16, p1 * 1.5);
  // The paper's single-fault reference: ~160 us.
  EXPECT_NEAR(p1, 160.0, 35.0);
}

TEST(WorkloadTest, SpinLocksMuchWorseThanDistributedAtFullContention) {
  // Figure 7a's headline: with 16 processors faulting, spin locks cost over
  // twice as much per fault as Distributed Locks.
  auto run = [](hsim::LockKind kind) {
    FaultTestParams params;
    params.lock_kind = kind;
    params.active_procs = 16;
    params.warmup_time = hsim::UsToTicks(2000);
    params.measure_time = hsim::UsToTicks(8000);
    return RunIndependentFaultTest(params).little_response_us();
  };
  const double dl = run(hsim::LockKind::kMcsH2);
  const double spin = run(hsim::LockKind::kSpin35us);
  EXPECT_GT(spin, dl * 2.0);
}

TEST(WorkloadTest, SmallClustersMatchFineGrainLockingForIndependentFaults) {
  // Figure 7c: with cluster size <= 4 the independent test does not degrade.
  auto run = [](std::uint32_t cs) {
    FaultTestParams params;
    params.cluster_size = cs;
    params.active_procs = 16;
    params.warmup_time = hsim::UsToTicks(2000);
    params.measure_time = hsim::UsToTicks(8000);
    return RunIndependentFaultTest(params).little_response_us();
  };
  const double cs1 = run(1);
  const double cs4 = run(4);
  const double cs16 = run(16);
  EXPECT_LT(cs4, cs1 * 1.25);   // flat up to cluster size 4
  EXPECT_GT(cs16, cs4 * 2.0);   // one big cluster degrades badly
}

TEST(WorkloadTest, SharedTestNarrowsTheLockKindGap) {
  // Figure 7b: contention moves to the reserve bits, so the DL-vs-spin gap is
  // much smaller than in the independent test.
  auto run = [](hsim::LockKind kind) {
    FaultTestParams params;
    params.lock_kind = kind;
    params.cluster_size = 16;
    params.active_procs = 16;
    params.pages = 4;
    params.iterations = 4;
    params.warmup = 1;
    return RunSharedFaultTest(params).latency.mean_us();
  };
  const double dl = run(hsim::LockKind::kMcsH2);
  const double spin = run(hsim::LockKind::kSpin35us);
  EXPECT_GT(spin, dl);             // spin still loses...
  EXPECT_LT(spin, dl * 2.0);       // ...but by much less than in Figure 7a
}

TEST(WorkloadTest, ModerateClustersBestForSharedFaults) {
  // Figure 7d: very small clusters pay for inter-cluster RPCs, one big
  // cluster pays lock/reserve contention; the middle wins.
  auto run = [](std::uint32_t cs) {
    FaultTestParams params;
    params.cluster_size = cs;
    params.active_procs = 16;
    params.pages = 4;
    params.iterations = 4;
    params.warmup = 1;
    return RunSharedFaultTest(params).latency.mean_us();
  };
  const double cs1 = run(1);
  const double cs4 = run(4);
  const double cs16 = run(16);
  EXPECT_LT(cs4, cs1 * 0.5);  // RPC overhead dominates tiny clusters
  EXPECT_LT(cs4, cs16);       // contention penalizes the single big cluster
}

TEST(WorkloadTest, MixedWorkloadTerminatesAndRecordsBothSides) {
  FaultTestParams params;
  params.cluster_size = 4;
  params.active_procs = 8;
  params.pages = 4;
  params.iterations = 2;
  params.warmup = 1;
  params.warmup_time = hsim::UsToTicks(500);
  FaultTestResult r = RunMixedFaultTest(params);
  // The SPMD side alone contributes 4 procs x 2 rounds x 4 pages = 32
  // recorded faults; the independent side adds more.
  EXPECT_GT(r.latency.count(), 32u);
  EXPECT_GT(r.counters.unmaps, 0u);
}

TEST(WorkloadTest, MixedWorkloadIsDeterministic) {
  FaultTestParams params;
  params.cluster_size = 4;
  params.active_procs = 8;
  params.iterations = 2;
  params.warmup = 1;
  params.warmup_time = hsim::UsToTicks(500);
  FaultTestResult a = RunMixedFaultTest(params);
  FaultTestResult b = RunMixedFaultTest(params);
  EXPECT_EQ(a.latency.samples(), b.latency.samples());
}

TEST(WorkloadTest, BarrierReleasesAllParties) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  KernelConfig config;
  KernelSystem system(&machine, config);
  SimBarrier barrier(&system, 5);
  int released = 0;
  for (hsim::ProcId p = 0; p < 5; ++p) {
    engine.Spawn([](KernelSystem* sys, SimBarrier* b, hsim::ProcId self,
                    int* counter) -> hsim::Task<void> {
      hsim::Processor& proc = sys->machine().processor(self);
      co_await proc.Compute(100 * (self + 1));  // staggered arrivals
      co_await b->Wait(proc);
      ++*counter;
    }(&system, &barrier, p, &released));
  }
  engine.RunUntilIdle();
  EXPECT_EQ(released, 5);
}

TEST(WorkloadTest, LockOverheadIsAboutAQuarterOfUncontendedFault) {
  // Section 1: 160 us fault, 40 us attributable to locking.
  FaultTestParams params;
  params.cluster_size = 4;
  params.active_procs = 1;
  params.warmup_time = hsim::UsToTicks(500);
  params.measure_time = hsim::UsToTicks(4000);
  FaultTestResult r = RunIndependentFaultTest(params);
  const double ratio = r.lock_overhead.mean_us() / r.latency.mean_us();
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.35);
}

}  // namespace
}  // namespace hkernel
