// Model-checks the NUMA-aware lock family (CNA, HMCS-T, Fissile) on the
// hcheck weak-memory model, exercising the algorithm cores directly over
// NativeBackend<hcheck::Platform> so the deliberate-bug switches are
// reachable.
//
// For each lock: mutual exclusion and no lost wakeup (every acquire
// completes and the lock is reusable at quiescence); for HMCS-T additionally
// that a timeout never orphans a queue node (pool conservation: at
// quiescence every node ever allocated sits in the free list exactly once).
// For each lock a deliberately broken variant proves hcheck catches the
// corresponding violation:
//
//   CNA      broken splice: a drained main queue *frees* the lock word and
//            only then grants the parked secondary head, so a fresh arrival
//            swaps onto the nil tail and runs concurrently (MX violation).
//   HMCS-T   broken abandon: a timed-out waiter leaves without marking its
//            node, which leaks it from the node pool (conservation failure).
//   Fissile  broken barge: a slow-path caller enters the critical section
//            off the inner queue grant without winning the outer word (MX
//            violation against a fast-path holder).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/algo/cna.h"
#include "src/hlock/algo/fissile.h"
#include "src/hlock/algo/hmcs.h"
#include "src/hlock/algo/native_backend.h"

namespace {

using B = hlock::algo::NativeBackend<hcheck::Platform>;
using CnaCore = hlock::algo::CnaCore<B>;
using HmcsTCore = hlock::algo::HmcsTCore<B>;
using FissileCore = hlock::algo::FissileCore<B>;

typename B::Ctx Self() { return typename B::Ctx{hcheck::Platform::ThreadId()}; }

// --- CNA --------------------------------------------------------------------

TEST(NumaLocksHcheck, CnaMutualExclusionTwoThreads) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/2);
    auto core = std::make_shared<CnaCore>(backend.get(), /*home=*/0);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [core, mx] {
      auto ctx = Self();
      core->Acquire(ctx).Get();
      mx->Enter();
      mx->Exit();
      core->Release(ctx).Get();
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
    // Quiescence / no lost wakeup: the lock must be free again.
    auto ctx = Self();
    HCHECK_ASSERT(core->TryAcquire(ctx).Get());
    core->Release(ctx).Get();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Three threads across two clusters: exercises the release-time scan, the
// secondary queue detach, and the splice-back paths.
TEST(NumaLocksHcheck, CnaMutualExclusionAcrossClusters) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/2);
    // max_streak = 1 forces the starvation-bound flush path as well.
    auto core = std::make_shared<CnaCore>(backend.get(), /*home=*/0, /*max_streak=*/1);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [core, mx] {
      auto ctx = Self();
      core->Acquire(ctx).Get();
      mx->Enter();
      mx->Exit();
      core->Release(ctx).Get();
    };
    hcheck::Thread a = hcheck::Spawn(worker);  // thread id 1: cluster 0
    hcheck::Thread b = hcheck::Spawn(worker);  // thread id 2: cluster 1
    worker();                                  // thread id 0: cluster 0
    a.Join();
    b.Join();
    HCHECK_ASSERT(mx->entries() == 3);
    auto ctx = Self();
    HCHECK_ASSERT(core->TryAcquire(ctx).Get());
    core->Release(ctx).Get();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// The broken-splice variant must be caught.  The queue is staged
// deterministically (gating on the observable queue shape) so that every
// schedule reaches the bug window, and hcheck only has to resolve the final
// race: the holder drains the main queue with a remote waiter parked in the
// secondary queue, wrongly frees the lock word, and grants the parked waiter
// -- while the main thread's fresh acquire swaps onto the nil tail.
TEST(NumaLocksHcheck, CnaBrokenSpliceViolatesMutualExclusion) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/2);
    auto core = std::make_shared<CnaCore>(backend.get(), /*home=*/0,
                                          CnaCore::kDefaultMaxStreak,
                                          /*broken_splice=*/true);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto go_local = std::make_shared<hcheck::Atomic<int>>(0);
    auto worker = [core, mx] {
      auto ctx = Self();
      core->Acquire(ctx).Get();
      mx->Enter();
      mx->Exit();
      core->Release(ctx).Get();
    };
    auto ctx = Self();
    core->Acquire(ctx).Get();  // main (id 0, cluster 0) holds
    // id 1 (cluster 0): the local waiter; gated until the remote one queues.
    hcheck::Thread local = hcheck::Spawn([worker, go_local] {
      while (go_local->load(std::memory_order_acquire) == 0) {
        hcheck::Yield();
      }
      worker();
    });
    // id 2 (cluster 1): the remote waiter, queues first.
    hcheck::Thread remote = hcheck::Spawn(worker);
    while (core->DebugLoadNext(ctx, 0).Get() != 3) {
      hcheck::Yield();  // until id 2 is linked behind main
    }
    go_local->store(1, std::memory_order_release);
    while (core->DebugLoadNext(ctx, 2).Get() != 2) {
      hcheck::Yield();  // until id 1 is linked behind id 2
    }
    // Release scans past the remote waiter, parks it in the secondary queue,
    // and grants id 1.  Id 1's release then hits the broken drain path.
    core->Release(ctx).Get();
    // Race under test: this acquire can swap onto the wrongly freed tail
    // while the parked remote waiter is being granted.
    core->Acquire(ctx).Get();
    mx->Enter();
    mx->Exit();
    core->Release(ctx).Get();
    local.Join();
    remote.Join();
  });
  EXPECT_TRUE(res.failed) << "hcheck failed to catch the broken CNA splice";
}

// --- HMCS-T -----------------------------------------------------------------

TEST(NumaLocksHcheck, HmcsTMutualExclusionTwoThreads) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/2);
    auto core = std::make_shared<HmcsTCore>(backend.get(), /*home=*/0);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [backend, core, mx] {
      auto ctx = Self();
      HCHECK_ASSERT(core->AcquireBlocking(ctx).Get());
      mx->Enter();
      mx->Exit();
      core->Release(ctx).Get();
    };
    hcheck::Thread t = hcheck::Spawn(worker);  // same cluster: inherit path
    worker();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

TEST(NumaLocksHcheck, HmcsTCrossClusterHandoff) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/1);
    auto core = std::make_shared<HmcsTCore>(backend.get(), /*home=*/0);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [core, mx] {
      auto ctx = Self();
      HCHECK_ASSERT(core->AcquireBlocking(ctx).Get());
      mx->Enter();
      mx->Exit();
      core->Release(ctx).Get();
    };
    hcheck::Thread t = hcheck::Spawn(worker);  // own cluster: global handoff
    worker();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// A timeout must never orphan a queue node: whether the timed waiter got the
// lock, timed out cleanly, or was granted in the abandon window, at
// quiescence every node ever allocated is back in the pool and the lock is
// free.
TEST(NumaLocksHcheck, HmcsTTimeoutNeverOrphansNode) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/2);
    auto core = std::make_shared<HmcsTCore>(backend.get(), /*home=*/0);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    hcheck::Thread t = hcheck::Spawn([backend, core, mx] {
      auto ctx = Self();
      // A zero budget expires at the first contended spin iteration.
      typename B::Deadline deadline = backend->MakeDeadline(ctx, 0);
      if (core->Acquire(ctx, deadline).Get()) {
        mx->Enter();
        mx->Exit();
        core->Release(ctx).Get();
      }
    });
    auto ctx = Self();
    HCHECK_ASSERT(core->AcquireBlocking(ctx).Get());
    mx->Enter();
    mx->Exit();
    core->Release(ctx).Get();
    t.Join();
    // Pool conservation at quiescence, across every level.
    for (std::uint32_t c = 0; c < backend->NumClusters() + 1; ++c) {
      auto& level = c == 0 ? core->global_level() : core->local_level(c - 1);
      HCHECK_ASSERT(level.total_nodes() == level.pooled_nodes());
    }
    // And the lock is still usable.
    HCHECK_ASSERT(core->AcquireBlocking(ctx).Get());
    core->Release(ctx).Get();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// The broken-abandon variant leaks the departed waiter's node: hcheck sees
// the conservation failure (or the lost wakeup downstream of it).
TEST(NumaLocksHcheck, HmcsTBrokenAbandonLeaksNode) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/2);
    auto core = std::make_shared<HmcsTCore>(backend.get(), /*home=*/0,
                                            HmcsTCore::kDefaultThreshold,
                                            /*broken_abandon=*/true);
    hcheck::Thread t = hcheck::Spawn([backend, core] {
      auto ctx = Self();
      typename B::Deadline deadline = backend->MakeDeadline(ctx, 0);
      if (core->Acquire(ctx, deadline).Get()) {
        core->Release(ctx).Get();
      }
    });
    auto ctx = Self();
    HCHECK_ASSERT(core->AcquireBlocking(ctx).Get());
    core->Release(ctx).Get();
    t.Join();
    for (std::uint32_t c = 0; c < backend->NumClusters() + 1; ++c) {
      auto& level = c == 0 ? core->global_level() : core->local_level(c - 1);
      HCHECK_ASSERT(level.total_nodes() == level.pooled_nodes());
    }
  });
  EXPECT_TRUE(res.failed) << "hcheck failed to catch the broken HMCS-T abandon";
}

// --- Fissile ----------------------------------------------------------------

TEST(NumaLocksHcheck, FissileMutualExclusionTwoThreads) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>();
    auto core = std::make_shared<FissileCore>(backend.get(), /*home=*/0,
                                              /*fast_attempts=*/1);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [core, mx] {
      auto ctx = Self();
      core->Acquire(ctx).Get();
      mx->Enter();
      mx->Exit();
      core->Release(ctx).Get();
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
    auto ctx = Self();
    HCHECK_ASSERT(core->TryAcquire(ctx).Get());
    core->Release(ctx).Get();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

TEST(NumaLocksHcheck, FissileThreeThreadsSlowPath) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>();
    // One fast attempt: contention reliably fissions into the queue.
    auto core = std::make_shared<FissileCore>(backend.get(), /*home=*/0,
                                              /*fast_attempts=*/1);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [core, mx] {
      auto ctx = Self();
      core->Acquire(ctx).Get();
      mx->Enter();
      mx->Exit();
      core->Release(ctx).Get();
    };
    hcheck::Thread a = hcheck::Spawn(worker);
    hcheck::Thread b = hcheck::Spawn(worker);
    worker();
    a.Join();
    b.Join();
    HCHECK_ASSERT(mx->entries() == 3);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

TEST(NumaLocksHcheck, FissileBrokenBargeViolatesMutualExclusion) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>();
    auto core = std::make_shared<FissileCore>(backend.get(), /*home=*/0,
                                              /*fast_attempts=*/1,
                                              /*broken_barge=*/true);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [core, mx] {
      auto ctx = Self();
      core->Acquire(ctx).Get();
      mx->Enter();
      mx->Exit();
      core->Release(ctx).Get();
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
  });
  EXPECT_TRUE(res.failed) << "hcheck failed to catch the broken Fissile barge";
}

}  // namespace
