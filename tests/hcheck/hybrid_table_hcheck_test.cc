// Model-checks the HybridTable reserve-word protocol (Figure 1b): exclusive
// reservations exclude each other and all readers, readers coexist, and Erase
// refuses reserved entries.  This is the one Figure-1b structure the hcheck
// suite did not previously cover; the reader-count saturation Check added to
// the increment sites is exercised here under every explored schedule.

#include <gtest/gtest.h>

#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/hybrid_table.h"
#include "src/hlock/mcs_locks.h"

namespace {

using Table = hlock::HybridTable<int, int, hlock::BasicMcsH2Lock<hcheck::Platform>,
                                 std::hash<int>, hcheck::Platform>;

// Two writers Acquire the same key and do a deliberately torn
// read-modify-write on the value.  Mutual exclusion of the reserve word is
// the only thing that makes the final count 2.
TEST(HybridTableHcheck, ExclusiveReservationsExcludeEachOther) {
  hcheck::Options opts;
  opts.max_schedules = 40000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto table = std::make_shared<Table>(4);
    auto bump = [table] {
      auto guard = table->Acquire(7);
      const int seen = guard.value();
      hcheck::Yield();  // widen the race window
      guard.value() = seen + 1;
    };
    hcheck::Thread a = hcheck::Spawn(bump);
    hcheck::Thread b = hcheck::Spawn(bump);
    a.Join();
    b.Join();
    auto check = table->Acquire(7);
    HCHECK_ASSERT(check.value() == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// A writer updates the value in two steps (1 then 2) under an exclusive
// reservation.  A reader holding a shared reservation must never observe the
// intermediate 1: readers and the writer are mutually exclusive.
TEST(HybridTableHcheck, ReaderNeverObservesPartialWrite) {
  hcheck::Options opts;
  opts.max_schedules = 40000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto table = std::make_shared<Table>(4);
    { auto init = table->Acquire(3); }  // create the entry, value 0
    hcheck::Thread writer = hcheck::Spawn([table] {
      auto guard = table->Acquire(3);
      guard.value() = 1;
      hcheck::Yield();
      guard.value() = 2;
    });
    {
      auto guard = table->AcquireShared(3);
      const int seen = guard.value();
      HCHECK_ASSERT(seen == 0 || seen == 2);
    }
    writer.Join();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Two readers may hold the same entry at once (the reserve word counts them);
// the no-spin writer path must fail exactly while any reader holds on.
TEST(HybridTableHcheck, ReadersCoexistAndBlockTryAcquire) {
  hcheck::Options opts;
  opts.max_schedules = 40000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto table = std::make_shared<Table>(4);
    { auto init = table->Acquire(5); }
    auto readers = std::make_shared<hcheck::Atomic<int>>(0);
    auto read = [table, readers] {
      auto guard = table->AcquireShared(5);
      readers->fetch_add(1, std::memory_order_relaxed);
      // While we hold a shared reservation, an exclusive try must fail.
      HCHECK_ASSERT(!table->TryAcquire(5));
      hcheck::Yield();
      readers->fetch_sub(1, std::memory_order_relaxed);
    };
    hcheck::Thread a = hcheck::Spawn(read);
    hcheck::Thread b = hcheck::Spawn(read);
    a.Join();
    b.Join();
    HCHECK_ASSERT(readers->load(std::memory_order_relaxed) == 0);
    // All readers gone: the writer path succeeds again.
    HCHECK_ASSERT(static_cast<bool>(table->TryAcquire(5)));
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Erase must refuse an entry while it is reserved (shared or exclusive) and
// succeed once it is free -- the type-stable-pool recycling depends on never
// freeing an entry out from under a holder.
TEST(HybridTableHcheck, EraseRefusesReservedEntries) {
  hcheck::Options opts;
  opts.max_schedules = 40000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto table = std::make_shared<Table>(4);
    auto holding = std::make_shared<hcheck::Atomic<int>>(0);
    auto released = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread holder = hcheck::Spawn([table, holding, released] {
      auto guard = table->Acquire(9);
      holding->store(1, std::memory_order_relaxed);
      hcheck::Yield();
      // Cleared before the reserve word: Erase's acquire load of a free
      // reserve word therefore always observes holding == 0.
      holding->store(0, std::memory_order_relaxed);
      guard.Release();
      released->store(1, std::memory_order_release);
    });
    while (released->load(std::memory_order_acquire) == 0) {
      // The holder may not have created the entry yet (Erase returns false
      // for absent keys too); what must never happen is a successful erase
      // while the reservation is held.
      if (table->Contains(9) && table->Erase(9)) {
        HCHECK_ASSERT(holding->load(std::memory_order_relaxed) == 0);
        break;
      }
      hcheck::Yield();
    }
    holder.Join();
    // Idempotent wind-down: if the loop exited on `released` without erasing,
    // the now-free entry must erase cleanly.
    if (table->Contains(9)) {
      HCHECK_ASSERT(table->Erase(9));
    }
    HCHECK_ASSERT(!table->Contains(9));
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Regression for the reader-exit lost update: SharedGuard::Release is a
// lock-free CAS decrement (the pre-fix code re-acquired the coarse chain lock
// around a plain decrement; dropping the lock without upgrading the decrement
// to a CAS loses counts).  Two readers release concurrently; both decrements
// must land, or the reserve word is left nonzero and the exclusive try below
// fails forever after.
TEST(HybridTableHcheck, ConcurrentReaderExitsBothLand) {
  hcheck::Options opts;
  opts.max_schedules = 40000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto table = std::make_shared<Table>(4);
    { auto init = table->Acquire(2); }
    auto read = [table] {
      auto guard = table->AcquireShared(2);
      hcheck::Yield();  // let the two releases overlap
    };
    hcheck::Thread a = hcheck::Spawn(read);
    hcheck::Thread b = hcheck::Spawn(read);
    a.Join();
    b.Join();
    // Both reader counts returned: the entry is free again.
    HCHECK_ASSERT(static_cast<bool>(table->TryAcquire(2)));
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// The deliberately re-broken variant (plain load/store decrement, still
// outside the coarse lock) loses one of two overlapping exits: hcheck must
// find the schedule where the entry stays reserved at quiescence.  This is
// what distinguishes the fix from "it happened to pass".
TEST(HybridTableHcheck, RacyReaderExitLosesACount) {
  hcheck::Options opts;
  opts.max_schedules = 40000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto table = std::make_shared<Table>(4);
    table->set_racy_reader_exit_for_test(true);
    { auto init = table->Acquire(2); }
    auto read = [table] {
      auto guard = table->AcquireShared(2);
      hcheck::Yield();
    };
    hcheck::Thread a = hcheck::Spawn(read);
    hcheck::Thread b = hcheck::Spawn(read);
    a.Join();
    b.Join();
    HCHECK_ASSERT(static_cast<bool>(table->TryAcquire(2)));
  });
  EXPECT_TRUE(res.failed) << "hcheck failed to catch the racy reader exit";
}

// A shared hold blocks Erase just as an exclusive one does, and the shared
// TryAcquireShared path fails while an exclusive reservation is pending.
TEST(HybridTableHcheck, TryAcquireSharedFailsWhileExclusive) {
  hcheck::Options opts;
  opts.max_schedules = 40000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto table = std::make_shared<Table>(4);
    auto guard = table->Acquire(1);
    hcheck::Thread reader = hcheck::Spawn([table] {
      // Exclusive reservation held by main: both no-spin paths must fail.
      HCHECK_ASSERT(!table->TryAcquireShared(1));
      HCHECK_ASSERT(!table->TryAcquire(1));
      HCHECK_ASSERT(!table->Erase(1));
    });
    reader.Join();
    guard.Release();
    HCHECK_ASSERT(static_cast<bool>(table->TryAcquireShared(1)));
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

}  // namespace
