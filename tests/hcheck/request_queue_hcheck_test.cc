// Model-checks the BoundedMpscQueue admission contract (the bugfix pinned in
// src/hsvc/request_queue.h):
//
//   1. depth() <= bound() in EVERY reachable state.  The pre-fix TryPush
//      reserved with fetch_add and backed failure out with fetch_sub, so
//      between the two the counter transiently exceeded the bound ("phantom
//      full") -- the depth invariant below fails on that version in the
//      schedule where the observer reads between reserve and backout.
//   2. A failed TryPush never perturbs the counter, so once the queue is
//      quiescent and non-full, TryPush must succeed -- the phantom-full drop
//      is impossible by construction, not just improbable.

#include <gtest/gtest.h>

#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hsvc/request_queue.h"

namespace {

// Minimal intrusive node satisfying the queue's T contract.
struct Node {
  hcheck::Atomic<Node*> mpsc_next{nullptr};
};

using Queue = hsvc::BoundedMpscQueue<Node, hcheck::Platform>;

// Two producers race TryPush against an already-full bound-1 queue while the
// main thread watches the admission counter: no interleaving may ever show
// depth() > bound(), including mid-failed-push.  (The fetch_add/fetch_sub
// version shows depth 2 here.)  With no consumer popping, both racing pushes
// must also report full.
TEST(RequestQueueHcheck, DepthNeverExceedsBound) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto q = std::make_shared<Queue>(/*bound=*/1);
    auto a = std::make_shared<Node>();
    auto b = std::make_shared<Node>();
    auto c = std::make_shared<Node>();
    HCHECK_ASSERT(q->TryPush(a.get()));  // queue now full
    auto producer = [q](std::shared_ptr<Node> n) {
      return [q, n] { HCHECK_ASSERT(!q->TryPush(n.get())); };
    };
    hcheck::Thread t1 = hcheck::Spawn(producer(b));
    hcheck::Thread t2 = hcheck::Spawn(producer(c));
    for (int i = 0; i < 3; ++i) {
      HCHECK_ASSERT(q->depth() <= q->bound());
      hcheck::Yield();
    }
    t1.Join();
    t2.Join();
    HCHECK_ASSERT(q->depth() == 1);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Fill a bound-1 queue, let the consumer pop the item, and synchronize with
// it; after that edge the queue is quiescent and empty, so TryPush MUST
// succeed.  This is the user-visible phantom-full symptom: admission control
// rejecting at the door of a queue that is not full.
TEST(RequestQueueHcheck, QuiescentNonFullNeverRejects) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto q = std::make_shared<Queue>(/*bound=*/1);
    auto a = std::make_shared<Node>();
    auto b = std::make_shared<Node>();
    auto drained = std::make_shared<hcheck::Atomic<int>>(0);
    HCHECK_ASSERT(q->TryPush(a.get()));
    hcheck::Thread consumer = hcheck::Spawn([q, a, drained] {
      Node* got = nullptr;
      while (got == nullptr) {
        got = q->Pop();
        if (got == nullptr) {
          hcheck::Yield();
        }
      }
      HCHECK_ASSERT(got == a.get());
      drained->store(1, std::memory_order_release);
    });
    while (drained->load(std::memory_order_acquire) == 0) {
      hcheck::Yield();
    }
    // The pop happened-before this point: the queue is empty and nobody else
    // is touching it.  A full report here would be the phantom-full bug.
    HCHECK_ASSERT(q->depth() == 0);
    HCHECK_ASSERT(q->TryPush(b.get()));
    HCHECK_ASSERT(q->depth() == 1);
    consumer.Join();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

}  // namespace
