// Tests of the hcheck checker itself: the weak-memory model must admit the
// reorderings the C++ model admits (so buggy code fails) and respect the
// synchronization it guarantees (so correct code passes).

#include <gtest/gtest.h>

#include <memory>

#include "src/hcheck/atomic.h"
#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hcheck/sync.h"

namespace {

using hcheck::Check;
using hcheck::Options;
using hcheck::Result;

// --- message passing -----------------------------------------------------------

// Release/acquire message passing is the guarantee half: the flag's acquire
// load synchronizes with the release store, so the payload must be visible.
TEST(HcheckModel, ReleaseAcquireMessagePassingPasses) {
  Options opts;
  Result res = Check(opts, [] {
    auto data = std::make_shared<hcheck::Atomic<int>>(0);
    auto flag = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([data, flag] {
      data->store(42, std::memory_order_relaxed);
      flag->store(1, std::memory_order_release);
    });
    while (flag->load(std::memory_order_acquire) == 0) {
      hcheck::Yield();
    }
    HCHECK_ASSERT(data->load(std::memory_order_relaxed) == 42);
    t.Join();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// The permission half: with a relaxed flag store there is no synchronizes-with
// edge, so the reader may see flag == 1 but data == 0.  The checker must find
// that schedule.
TEST(HcheckModel, RelaxedMessagePassingFails) {
  Options opts;
  Result res = Check(opts, [] {
    auto data = std::make_shared<hcheck::Atomic<int>>(0);
    auto flag = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([data, flag] {
      data->store(42, std::memory_order_relaxed);
      flag->store(1, std::memory_order_relaxed);  // bug: no release
    });
    while (flag->load(std::memory_order_acquire) == 0) {
      hcheck::Yield();
    }
    HCHECK_ASSERT(data->load(std::memory_order_relaxed) == 42);
    t.Join();
  });
  EXPECT_TRUE(res.failed);
  EXPECT_EQ(res.kind, "assert");
}

// Release fence upstream of a relaxed store restores the guarantee.
TEST(HcheckModel, ReleaseFencePublishesPasses) {
  Options opts;
  Result res = Check(opts, [] {
    auto data = std::make_shared<hcheck::Atomic<int>>(0);
    auto flag = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([data, flag] {
      data->store(42, std::memory_order_relaxed);
      hcheck::ThreadFence(std::memory_order_release);
      flag->store(1, std::memory_order_relaxed);
    });
    while (flag->load(std::memory_order_relaxed) == 0) {
      hcheck::Yield();
    }
    hcheck::ThreadFence(std::memory_order_acquire);
    HCHECK_ASSERT(data->load(std::memory_order_relaxed) == 42);
    t.Join();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// --- Dekker store/load ----------------------------------------------------------

// The store-buffer litmus test (the shape behind the SpinThenBlockLock bug).
// With acquire/release only, both threads may read 0 — C++ allows it, real
// hardware (TSO store buffers) does it, and the checker must find it.
TEST(HcheckModel, DekkerWithoutSeqCstFails) {
  Options opts;
  Result res = Check(opts, [] {
    auto x = std::make_shared<hcheck::Atomic<int>>(0);
    auto y = std::make_shared<hcheck::Atomic<int>>(0);
    auto r0 = std::make_shared<hcheck::Atomic<int>>(-1);
    auto r1 = std::make_shared<hcheck::Atomic<int>>(-1);
    hcheck::Thread t = hcheck::Spawn([y, x, r1] {
      y->store(1, std::memory_order_release);
      r1->store(x->load(std::memory_order_acquire), std::memory_order_relaxed);
    });
    x->store(1, std::memory_order_release);
    r0->store(y->load(std::memory_order_acquire), std::memory_order_relaxed);
    t.Join();
    HCHECK_ASSERT(r0->load(std::memory_order_relaxed) == 1 ||
                  r1->load(std::memory_order_relaxed) == 1);
  });
  EXPECT_TRUE(res.failed) << "checker missed the store-buffer outcome";
  EXPECT_EQ(res.kind, "assert");
}

// With seq_cst fences between each store and load, both-read-0 is forbidden.
TEST(HcheckModel, DekkerWithSeqCstFencesPasses) {
  Options opts;
  Result res = Check(opts, [] {
    auto x = std::make_shared<hcheck::Atomic<int>>(0);
    auto y = std::make_shared<hcheck::Atomic<int>>(0);
    auto r0 = std::make_shared<hcheck::Atomic<int>>(-1);
    auto r1 = std::make_shared<hcheck::Atomic<int>>(-1);
    hcheck::Thread t = hcheck::Spawn([y, x, r1] {
      y->store(1, std::memory_order_relaxed);
      hcheck::ThreadFence(std::memory_order_seq_cst);
      r1->store(x->load(std::memory_order_relaxed), std::memory_order_relaxed);
    });
    x->store(1, std::memory_order_relaxed);
    hcheck::ThreadFence(std::memory_order_seq_cst);
    r0->store(y->load(std::memory_order_relaxed), std::memory_order_relaxed);
    t.Join();
    HCHECK_ASSERT(r0->load(std::memory_order_relaxed) == 1 ||
                  r1->load(std::memory_order_relaxed) == 1);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// --- coherence ------------------------------------------------------------------

// Even relaxed loads may not go backwards on one location (read-read
// coherence), and RMWs always see the newest value.
TEST(HcheckModel, CoherenceAndRmwFreshness) {
  Options opts;
  Result res = Check(opts, [] {
    auto x = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([x] {
      x->store(1, std::memory_order_relaxed);
      x->store(2, std::memory_order_relaxed);
    });
    const int a = x->load(std::memory_order_relaxed);
    const int b = x->load(std::memory_order_relaxed);
    HCHECK_ASSERT(b >= a);
    t.Join();
    // After join (happens-before), only the final value is visible.
    HCHECK_ASSERT(x->load(std::memory_order_relaxed) == 2);
    HCHECK_ASSERT(x->fetch_add(0, std::memory_order_relaxed) == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// --- mutexes and condition variables -------------------------------------------

TEST(HcheckModel, MutexProvidesExclusionAndVisibility) {
  Options opts;
  Result res = Check(opts, [] {
    auto mu = std::make_shared<hcheck::Mutex>();
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto counter = std::make_shared<hcheck::Atomic<int>>(0);
    auto worker = [mu, mx, counter] {
      mu->lock();
      mx->Enter();
      counter->store(counter->load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
      mx->Exit();
      mu->unlock();
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(counter->load(std::memory_order_relaxed) == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// A missing notify must be reported as a lost signal, not hang the test.
TEST(HcheckModel, MissingNotifyReportedAsLostSignal) {
  Options opts;
  Result res = Check(opts, [] {
    auto mu = std::make_shared<hcheck::Mutex>();
    auto cv = std::make_shared<hcheck::CondVar>();
    hcheck::Thread t = hcheck::Spawn([mu, cv] {
      std::unique_lock<hcheck::Mutex> lk(*mu);
      cv->wait(lk);  // bug: no one will ever notify
    });
    t.Join();
  });
  EXPECT_TRUE(res.failed);
  EXPECT_EQ(res.kind, "lost-signal") << res.message;
}

TEST(HcheckModel, NotifyWakesWaiter) {
  Options opts;
  Result res = Check(opts, [] {
    auto mu = std::make_shared<hcheck::Mutex>();
    auto cv = std::make_shared<hcheck::CondVar>();
    auto ready = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([mu, cv, ready] {
      std::unique_lock<hcheck::Mutex> lk(*mu);
      while (ready->load(std::memory_order_relaxed) == 0) {
        cv->wait(lk);
      }
    });
    {
      std::unique_lock<hcheck::Mutex> lk(*mu);
      ready->store(1, std::memory_order_relaxed);
      cv->notify_one();
    }
    t.Join();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// --- replay ---------------------------------------------------------------------

// Random mode must report a seed that replays the failure by itself.
TEST(HcheckModel, RandomModeFailureSeedReplays) {
  Options opts;
  opts.random_schedules = 2000;
  opts.seed = 7;
  auto body = [] {
    auto data = std::make_shared<hcheck::Atomic<int>>(0);
    auto flag = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([data, flag] {
      data->store(42, std::memory_order_relaxed);
      flag->store(1, std::memory_order_relaxed);  // bug
    });
    while (flag->load(std::memory_order_acquire) == 0) {
      hcheck::Yield();
    }
    HCHECK_ASSERT(data->load(std::memory_order_relaxed) == 42);
    t.Join();
  };
  Result res = Check(opts, body);
  ASSERT_TRUE(res.failed) << "random mode missed an easy bug in 2000 schedules";
  EXPECT_NE(res.message.find("seed="), std::string::npos);

  Options replay;
  replay.random_schedules = 1;
  replay.seed = res.seed;
  Result again = Check(replay, body);
  EXPECT_TRUE(again.failed) << "reported seed did not replay the failure";
  EXPECT_EQ(again.schedules_run, 1u);
}

// A deterministic pass on a bounded body must exhaust its schedule space.
TEST(HcheckModel, SmallSpaceIsExhausted) {
  Options opts;
  Result res = Check(opts, [] {
    auto x = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([x] { x->fetch_add(1, std::memory_order_relaxed); });
    x->fetch_add(1, std::memory_order_relaxed);
    t.Join();
    HCHECK_ASSERT(x->load(std::memory_order_relaxed) == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.schedules_run, 1u);
}

}  // namespace
