// Model-checks the TryLock variants (Section 3.2).
//
// V1: the in_use flag must make an interrupt-context acquire refuse (rather
// than deadlock) exactly when it interrupted this thread's own lock code.
//
// V2: abandoned-node reclamation must conserve nodes — at quiescence every
// node ever allocated sits in the free list exactly once.  A release that
// reclaims the same node twice is caught eagerly by the pool's double-free
// check; a node leaked in the queue shows up as pooled < total.

#include <gtest/gtest.h>

#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/mcs_try_lock.h"

namespace {

using TryV1 = hlock::BasicMcsTryV1Lock<hcheck::Platform>;
using TryV2 = hlock::BasicMcsTryV2Lock<hcheck::Platform>;

TEST(McsTryHcheck, V1MutualExclusion) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto lock = std::make_shared<TryV1>();
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [lock, mx] {
      lock->lock();
      mx->Enter();
      mx->Exit();
      lock->unlock();
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// The in_use protocol, single-owner-context invariant: with the lock held by
// this thread, a nested (interrupt) acquire must refuse; once released, it
// must succeed.
TEST(McsTryHcheck, V1InterruptRefusesWhileNodeInUse) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto lock = std::make_shared<TryV1>();
    lock->lock();
    // "Interrupt" arrives while we hold the lock: our node is in use, so the
    // handler must refuse instead of enqueueing behind ourselves (deadlock).
    HCHECK_ASSERT(!lock->LockFromInterrupt());
    lock->unlock();
    // With the node quiescent the handler path acquires normally.
    HCHECK_ASSERT(lock->LockFromInterrupt());
    lock->unlock();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Cross-thread contention on the lock while one thread also exercises its own
// interrupt path.
TEST(McsTryHcheck, V1InterruptUnderContention) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto lock = std::make_shared<TryV1>();
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    hcheck::Thread t = hcheck::Spawn([lock, mx] {
      lock->lock();
      mx->Enter();
      mx->Exit();
      lock->unlock();
    });
    if (lock->LockFromInterrupt()) {  // own node free: acquires (and waits)
      mx->Enter();
      mx->Exit();
      lock->unlock();
    }
    t.Join();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// V2 conservation: holder + one try_lock contender.  In schedules where the
// contender abandons, the release must reclaim the abandoned node; in
// schedules where the grant wins the race, the contender owns the lock.
// Either way, at quiescence total_nodes() == pooled_nodes().
TEST(McsTryHcheck, V2AbandonedNodeConservation) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto lock = std::make_shared<TryV2>();
    lock->lock();
    hcheck::Thread t = hcheck::Spawn([lock] {
      if (lock->try_lock()) {
        lock->unlock();
      }
    });
    lock->unlock();
    t.Join();
    HCHECK_ASSERT(lock->total_nodes() == lock->pooled_nodes());
    // Quiescence: the lock is free again.
    HCHECK_ASSERT(lock->try_lock());
    lock->unlock();
    HCHECK_ASSERT(lock->total_nodes() == lock->pooled_nodes());
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Three threads: a waiter queued behind an abandoner forces the release to
// walk over the abandoned node and grant the thread after it.
TEST(McsTryHcheck, V2ReclaimWalkPastAbandonedNode) {
  auto total_reclaims = std::make_shared<std::uint64_t>(0);
  hcheck::Options opts;
  opts.max_schedules = 25000;
  hcheck::Result res = hcheck::Check(opts, [total_reclaims] {
    auto lock = std::make_shared<TryV2>();
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    lock->lock();
    hcheck::Thread trier = hcheck::Spawn([lock, mx] {
      if (lock->try_lock()) {
        mx->Enter();
        mx->Exit();
        lock->unlock();
      }
    });
    hcheck::Thread waiter = hcheck::Spawn([lock, mx] {
      lock->lock();
      mx->Enter();
      mx->Exit();
      lock->unlock();
    });
    lock->unlock();
    trier.Join();
    waiter.Join();
    HCHECK_ASSERT(lock->total_nodes() == lock->pooled_nodes());
    *total_reclaims += lock->abandoned_nodes_reclaimed();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
  EXPECT_GT(*total_reclaims, 0u)
      << "no explored schedule exercised abandoned-node reclamation";
}

}  // namespace
