// Model-checks the distributed reader-writer lock (algo::DrwLockCore) on the
// hcheck weak-memory model: readers on different clusters genuinely coexist,
// a writer excludes every reader (the Dekker race between reader increments
// and the flag+sweep is where acquire/release alone would lose), writers
// exclude each other, and upgrade/downgrade hand the hold over without a
// window.  Two deliberately broken variants prove the checker can see the
// protocol's failure modes:
//
//   kBrokenSweep      the writer sweep skips cluster 0, so a reader there
//                     runs concurrently with the "exclusive" holder (MX
//                     violation, caught via a readers-inside counter).
//   kBrokenUnderflow  the reader backout path decrements twice, wrapping the
//                     cluster counter (the underflow Check fires).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/algo/drwlock.h"
#include "src/hlock/algo/native_backend.h"

namespace {

using B = hlock::algo::NativeBackend<hcheck::Platform>;
using DrwCore = hlock::algo::DrwLockCore<B>;
using hlock::algo::DrwBroken;
using hlock::algo::DrwPreference;

typename B::Ctx Self() { return typename B::Ctx{hcheck::Platform::ThreadId()}; }

// Two readers on different clusters hold the lock *at the same time*: the
// spawned reader enters and parks inside its hold until the main reader --
// also inside its hold -- has seen it.  If readers excluded each other this
// would deadlock; instead every schedule reaches the doubly-held state, after
// which the lock must still grant a writer.
TEST(DrwLockHcheck, ReadersOnDifferentClustersCoexist) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/1);
    auto core = std::make_shared<DrwCore>(backend.get(), /*home=*/0);
    auto peer_in = std::make_shared<hcheck::Atomic<int>>(0);
    auto release_peer = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([core, peer_in, release_peer] {
      auto ctx = Self();  // thread id 1: cluster 1
      core->AcquireShared(ctx).Get();
      peer_in->store(1, std::memory_order_release);
      while (release_peer->load(std::memory_order_acquire) == 0) {
        hcheck::Yield();
      }
      core->ReleaseShared(ctx).Get();
    });
    auto ctx = Self();  // thread id 0: cluster 0
    core->AcquireShared(ctx).Get();
    // Both holds overlap here: we wait for the peer while still inside ours.
    while (peer_in->load(std::memory_order_acquire) == 0) {
      hcheck::Yield();
    }
    release_peer->store(1, std::memory_order_release);
    core->ReleaseShared(ctx).Get();
    t.Join();
    // Quiescence: all counters drained, a writer gets in cleanly.
    HCHECK_ASSERT(core->TryAcquireExclusive(ctx).Get());
    core->ReleaseExclusive(ctx).Get();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// A writer never overlaps a reader (or another writer).  Readers count
// themselves inside their hold; the writer asserts the population is zero for
// the whole exclusive section.  The no-spin entries must also tell the truth:
// TryAcquireExclusive fails while a reader is in (and backs the flag out),
// TryAcquireShared fails while the writer is in.
TEST(DrwLockHcheck, WriterExcludesReaders) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/1);
    auto core = std::make_shared<DrwCore>(backend.get(), /*home=*/0);
    auto readers_in = std::make_shared<hcheck::Atomic<int>>(0);
    auto writer_in = std::make_shared<hcheck::Atomic<int>>(0);
    auto reader = [core, readers_in, writer_in] {
      auto ctx = Self();
      core->AcquireShared(ctx).Get();
      readers_in->fetch_add(1, std::memory_order_relaxed);
      HCHECK_ASSERT(writer_in->load(std::memory_order_relaxed) == 0);
      // While we hold shared, an exclusive try must fail and back out.
      HCHECK_ASSERT(!core->TryAcquireExclusive(ctx).Get());
      hcheck::Yield();
      HCHECK_ASSERT(writer_in->load(std::memory_order_relaxed) == 0);
      readers_in->fetch_sub(1, std::memory_order_relaxed);
      core->ReleaseShared(ctx).Get();
    };
    hcheck::Thread a = hcheck::Spawn(reader);  // id 1: cluster 1
    hcheck::Thread b = hcheck::Spawn(reader);  // id 2: cluster 2
    auto ctx = Self();  // id 0: cluster 0
    core->AcquireExclusive(ctx).Get();
    HCHECK_ASSERT(readers_in->load(std::memory_order_relaxed) == 0);
    writer_in->store(1, std::memory_order_relaxed);
    // While the writer holds, the no-spin reader entry must fail.
    HCHECK_ASSERT(!core->TryAcquireShared(ctx).Get());
    hcheck::Yield();
    HCHECK_ASSERT(readers_in->load(std::memory_order_relaxed) == 0);
    writer_in->store(0, std::memory_order_relaxed);
    core->ReleaseExclusive(ctx).Get();
    a.Join();
    b.Join();
    HCHECK_ASSERT(core->TryAcquireExclusive(ctx).Get());
    core->ReleaseExclusive(ctx).Get();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Same exclusion property under reader preference: the writer's flagless
// pre-drain must still end with a definitive flag+sweep, or an admitted
// reader overlaps the write hold.
TEST(DrwLockHcheck, WriterExcludesReadersUnderReaderPreference) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/1);
    auto core = std::make_shared<DrwCore>(backend.get(), /*home=*/0,
                                          DrwPreference::kReaders);
    auto readers_in = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([core, readers_in] {
      auto ctx = Self();
      core->AcquireShared(ctx).Get();
      readers_in->fetch_add(1, std::memory_order_relaxed);
      hcheck::Yield();
      readers_in->fetch_sub(1, std::memory_order_relaxed);
      core->ReleaseShared(ctx).Get();
    });
    auto ctx = Self();
    core->AcquireExclusive(ctx).Get();
    HCHECK_ASSERT(readers_in->load(std::memory_order_relaxed) == 0);
    hcheck::Yield();
    HCHECK_ASSERT(readers_in->load(std::memory_order_relaxed) == 0);
    core->ReleaseExclusive(ctx).Get();
    t.Join();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Writer/writer exclusion through the standalone write path (wmutex), plus
// lock reusability at quiescence.
TEST(DrwLockHcheck, WritersExcludeEachOther) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/2);
    auto core = std::make_shared<DrwCore>(backend.get(), /*home=*/0);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto writer = [core, mx] {
      auto ctx = Self();
      core->AcquireExclusive(ctx).Get();
      mx->Enter();
      mx->Exit();
      core->ReleaseExclusive(ctx).Get();
    };
    hcheck::Thread t = hcheck::Spawn(writer);
    writer();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
    auto ctx = Self();
    HCHECK_ASSERT(core->TryAcquireExclusive(ctx).Get());
    core->ReleaseExclusive(ctx).Get();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Upgrade consumes the shared hold into an exclusive one with no window: a
// concurrent reader must never observe the half-done write (1), only the
// initial 0 or the completed 2.  Downgrade re-enters the reader side without
// dropping the hold, so the downgraded reader still sees its own writes.
TEST(DrwLockHcheck, UpgradeDowngradeHandsOverWithoutWindow) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/1);
    auto core = std::make_shared<DrwCore>(backend.get(), /*home=*/0);
    auto value = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread t = hcheck::Spawn([core, value] {
      auto ctx = Self();
      core->AcquireShared(ctx).Get();
      const int seen = value->load(std::memory_order_relaxed);
      HCHECK_ASSERT(seen == 0 || seen == 2);
      core->ReleaseShared(ctx).Get();
    });
    auto ctx = Self();
    core->AcquireShared(ctx).Get();
    if (core->TryUpgrade(ctx).Get()) {
      // Exclusive now: the two-step write below is invisible half-done.
      value->store(1, std::memory_order_relaxed);
      hcheck::Yield();
      value->store(2, std::memory_order_relaxed);
      core->Downgrade(ctx).Get();
      HCHECK_ASSERT(value->load(std::memory_order_relaxed) == 2);
      core->ReleaseShared(ctx).Get();
    } else {
      // Lost the writer-mutex race (can't happen here -- no other writer --
      // but the contract says the shared hold survives a failed try).
      core->ReleaseShared(ctx).Get();
    }
    t.Join();
    HCHECK_ASSERT(core->TryAcquireExclusive(ctx).Get());
    core->ReleaseExclusive(ctx).Get();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// The broken sweep never looks at cluster 0, so the writer is granted while
// the cluster-0 reader is still inside: the readers-inside assertion fires on
// the very first schedule that stages the overlap (which the gates below make
// every schedule).
TEST(DrwLockHcheck, BrokenSweepViolatesExclusion) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/1);
    auto core = std::make_shared<DrwCore>(backend.get(), /*home=*/0,
                                          DrwPreference::kWriters,
                                          DrwBroken::kBrokenSweep);
    auto readers_in = std::make_shared<hcheck::Atomic<int>>(0);
    auto writer_done = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread writer = hcheck::Spawn([core, readers_in, writer_done] {
      auto ctx = Self();  // id 1: cluster 1 (swept; cluster 0 is skipped)
      while (readers_in->load(std::memory_order_acquire) == 0) {
        hcheck::Yield();
      }
      core->AcquireExclusive(ctx).Get();
      HCHECK_ASSERT(readers_in->load(std::memory_order_relaxed) == 0);
      core->ReleaseExclusive(ctx).Get();
      writer_done->store(1, std::memory_order_release);
    });
    auto ctx = Self();  // id 0: cluster 0, the skipped counter
    core->AcquireShared(ctx).Get();
    readers_in->store(1, std::memory_order_release);
    while (writer_done->load(std::memory_order_acquire) == 0) {
      hcheck::Yield();
    }
    readers_in->store(0, std::memory_order_relaxed);
    core->ReleaseShared(ctx).Get();
    writer.Join();
  });
  EXPECT_TRUE(res.failed) << "hcheck failed to catch the broken drwlock sweep";
}

// The broken backout decrements the cluster counter twice; the second
// decrement finds it already at zero and the underflow Check fires.  The
// gate guarantees the reader's increment happens while the writer flag is up,
// so every schedule walks straight into the backout path.
TEST(DrwLockHcheck, BrokenUnderflowCaughtInBackout) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<B>(/*procs_per_cluster=*/1);
    auto core = std::make_shared<DrwCore>(backend.get(), /*home=*/0,
                                          DrwPreference::kWriters,
                                          DrwBroken::kBrokenUnderflow);
    auto writer_holds = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread reader = hcheck::Spawn([core, writer_holds] {
      auto ctx = Self();
      while (writer_holds->load(std::memory_order_acquire) == 0) {
        hcheck::Yield();
      }
      // Flag is up: the increment backs out, and the broken double decrement
      // underflows the counter we no longer hold.
      core->AcquireShared(ctx).Get();
      core->ReleaseShared(ctx).Get();
    });
    auto ctx = Self();
    core->AcquireExclusive(ctx).Get();
    writer_holds->store(1, std::memory_order_release);
    hcheck::Yield();
    core->ReleaseExclusive(ctx).Get();
    reader.Join();
  });
  EXPECT_TRUE(res.failed) << "hcheck failed to catch the drwlock reader-count underflow";
}

}  // namespace
