// Model-checks the slab allocator core (halloc::SlabAllocatorCore) on the
// hcheck weak-memory model.  The interesting edge is the depot: a magazine
// filled by one cluster (under that cluster's cache lock) is published to the
// next cluster that pops it from the depot by exactly one release store --
// the depot unlock.  The correct core crosses that edge cleanly; the
// deliberately broken knobs prove the checker can see both failure modes:
//
//   kBrokenDepotRelease  the depot unlock is demoted to relaxed, so a
//                        consumer on another cluster can pop a full magazine
//                        and read its count/rounds (or the slab cursors)
//                        stale -- manifesting as a wrong ref, a phantom
//                        exhaustion, or a double carve.
//   kBrokenCountSkew     the magazine pop decrements the round count twice,
//                        wrapping it on an odd magazine; the count range
//                        Check fires deterministically a few operations in.
//
// Geometry used by the publish tests: 2 clusters, objects_per_cluster = 2,
// magazine_size = 1.  Cluster 0 owns refs {1, 2} (loaded magazine primed
// with 1, slab cursor at 2); cluster 1 owns refs {3, 4} (primed with 3,
// cursor at 4).  Thread 0 (cluster 0) allocates 1 (fast), 2 (depot carve),
// and 4 (depot steal from cluster 1's range), then frees all three; with
// magazine_size 1 the third free forces a free-side depot trip that pushes a
// FULL magazine holding ref 1 onto the depot.  Thread 1 (cluster 1), gated
// to run after all of that by a RELAXED flag (deliberately no happens-before
// edge -- the depot unlock must provide it), allocates 3 from its own primed
// magazine and then takes a depot trip that must pop that full magazine and
// return ref 1.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/halloc/slab_allocator.h"
#include "src/halloc/slab_core.h"
#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"

namespace {

using AB = halloc::AllocBackend<hcheck::Platform>;
using Core = halloc::SlabAllocatorCore<AB>;
using halloc::AllocBroken;
using halloc::SlabConfig;

constexpr std::uint64_t kNil = Core::kNil;

typename AB::Ctx Self() { return typename AB::Ctx{hcheck::Platform::ThreadId()}; }

// The cross-cluster publish script described in the file comment,
// parameterized by the broken knob so the correct run and the severed-edge
// run are the same program.
hcheck::Result CheckCrossClusterPublish(AllocBroken broken) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  return hcheck::Check(opts, [broken] {
    auto backend = std::make_shared<AB>(/*num_clusters=*/2);
    backend->RegisterCtx(0, 0);  // main thread: cluster 0
    backend->RegisterCtx(1, 1);  // spawned consumer: cluster 1
    SlabConfig cfg;
    cfg.objects_per_cluster = 2;
    cfg.magazine_size = 1;
    cfg.broken = broken;
    auto core = std::make_shared<Core>(backend.get(), cfg);
    // Relaxed on purpose: the gate orders the *schedule* (the consumer's
    // depot trip happens after the producer's) but contributes no
    // happens-before edge, so magazine visibility rests entirely on the
    // depot lock's release/acquire pair -- the edge under test.
    auto go = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread consumer = hcheck::Spawn([core, go] {
      auto ctx = Self();  // thread id 1: cluster 1
      // Own primed magazine: fast path, no depot involvement.
      const std::uint64_t r1 = core->Alloc(ctx).Get();
      HCHECK_ASSERT(r1 == 3);
      while (go->load(std::memory_order_relaxed) == 0) {
        hcheck::Yield();
      }
      // Depot trip: must pop the full magazine the producer published and
      // hand out ref 1.  With the broken depot release the count, the round,
      // or the slab cursors read stale here, and r2 comes back as kNil
      // (phantom exhaustion), 2, or 4 instead.
      const std::uint64_t r2 = core->Alloc(ctx).Get();
      HCHECK_ASSERT(r2 == 1);
    });
    auto ctx = Self();  // thread id 0: cluster 0
    const std::uint64_t a = core->Alloc(ctx).Get();  // primed fast path
    const std::uint64_t b = core->Alloc(ctx).Get();  // depot carve of own range
    const std::uint64_t c = core->Alloc(ctx).Get();  // depot steal of ref 4
    HCHECK_ASSERT(a == 1);
    HCHECK_ASSERT(b == 2);
    HCHECK_ASSERT(c == 4);
    core->Free(ctx, a).Get();  // fast: loaded magazine now {1}
    core->Free(ctx, b).Get();  // loaded/previous exchange
    core->Free(ctx, c).Get();  // depot trip: pushes the full magazine {1}
    go->store(1, std::memory_order_relaxed);
    consumer.Join();
  });
}

TEST(HallocHcheck, CrossClusterMagazinePublish) {
  hcheck::Result res = CheckCrossClusterPublish(AllocBroken::kNone);
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

TEST(HallocHcheck, BrokenDepotReleaseCaught) {
  hcheck::Result res = CheckCrossClusterPublish(AllocBroken::kBrokenDepotRelease);
  EXPECT_TRUE(res.failed)
      << "hcheck failed to catch the relaxed depot unlock publishing a stale magazine";
}

// Single cluster, objects_per_cluster = 4, magazine_size = 2: the loaded
// magazine is primed with {1, 2}.  The same five-operation script runs
// single-threaded under both knobs; with the skew every pop decrements the
// count by two, so popping from a magazine holding one round wraps the count
// and the very next pop trips the "magazine count out of range" Check.
TEST(HallocHcheck, CountSkewTwinScriptPassesWhenCorrect) {
  hcheck::Options opts;
  opts.max_schedules = 1000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<AB>(/*num_clusters=*/1);
    backend->RegisterCtx(0, 0);
    SlabConfig cfg;
    cfg.objects_per_cluster = 4;
    cfg.magazine_size = 2;
    auto core = std::make_shared<Core>(backend.get(), cfg);
    auto ctx = Self();
    // Rounds pop top-down, so the primed {1, 2} magazine hands out 2 then 1.
    HCHECK_ASSERT(core->Alloc(ctx).Get() == 2);
    HCHECK_ASSERT(core->Alloc(ctx).Get() == 1);
    core->Free(ctx, 2).Get();
    HCHECK_ASSERT(core->Alloc(ctx).Get() == 2);
    // Both magazines empty: depot carve of {3, 4}, topmost round first.
    HCHECK_ASSERT(core->Alloc(ctx).Get() == 4);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

TEST(HallocHcheck, BrokenCountSkewCaught) {
  hcheck::Options opts;
  opts.max_schedules = 1000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<AB>(/*num_clusters=*/1);
    backend->RegisterCtx(0, 0);
    SlabConfig cfg;
    cfg.objects_per_cluster = 4;
    cfg.magazine_size = 2;
    cfg.broken = AllocBroken::kBrokenCountSkew;
    auto core = std::make_shared<Core>(backend.get(), cfg);
    auto ctx = Self();
    // Same shape as the twin above.  The skewed pops leak ref 1 (count 2 -> 0
    // after handing out only ref 2) and ref 3; the free then leaves the
    // loaded magazine at count 1, the next pop wraps it to ~2^64, and the pop
    // after that fails the range Check.
    const std::uint64_t a = core->Alloc(ctx).Get();
    HCHECK_ASSERT(a == 2);
    const std::uint64_t b = core->Alloc(ctx).Get();
    HCHECK_ASSERT(b == 4);
    core->Free(ctx, a).Get();
    core->Alloc(ctx).Get();  // pops 2 again; count wraps below zero
    core->Alloc(ctx).Get();  // range Check fires
  });
  EXPECT_TRUE(res.failed)
      << "hcheck failed to catch the magazine count wrapping under the skewed pop";
}

// Two clusters hammering alloc/free concurrently, including depot steals once
// cluster 0 exhausts its two-ref range: the host-side double-alloc /
// double-free tracking asserts every schedule hands out each ref at most
// once, and the count/range Checks guard the magazines.
TEST(HallocHcheck, ConcurrentAllocFreeNoDoubleAlloc) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto backend = std::make_shared<AB>(/*num_clusters=*/2);
    backend->RegisterCtx(0, 0);
    backend->RegisterCtx(1, 1);
    SlabConfig cfg;
    cfg.objects_per_cluster = 2;
    cfg.magazine_size = 1;
    auto core = std::make_shared<Core>(backend.get(), cfg);
    auto worker = [core] {
      auto ctx = Self();
      for (int i = 0; i < 2; ++i) {
        const std::uint64_t ref = core->Alloc(ctx).Get();
        if (ref != kNil) {
          HCHECK_ASSERT(ref >= 1 && ref <= core->capacity());
          core->Free(ctx, ref).Get();
        }
      }
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    const halloc::CacheStats total = core->TotalCacheStats();
    HCHECK_ASSERT(total.allocs() == total.frees());
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

}  // namespace
