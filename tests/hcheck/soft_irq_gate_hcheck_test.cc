// Model-checks the SoftIrqGate deferred-work queue: work posted from another
// thread (the cross-processor RPC analogue) is never lost — it runs at the
// owner's next Poll/Exit — and a closed gate defers rather than drops.

#include <gtest/gtest.h>

#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/soft_irq_gate.h"

namespace {

using Gate = hlock::BasicSoftIrqGate<hcheck::Platform>;

// A remote thread posts while the owner polls: the no-lost-work property of
// the MPSC handoff under every explored weak-memory schedule.
TEST(SoftIrqGateHcheck, RemotePostIsNeverLost) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto gate = std::make_shared<Gate>();
    auto ran = std::make_shared<hcheck::Atomic<int>>(0);
    hcheck::Thread poster = hcheck::Spawn([gate, ran] {
      gate->Post([ran] { ran->store(1, std::memory_order_relaxed); });
    });
    while (ran->load(std::memory_order_relaxed) == 0) {
      gate->Poll();
      hcheck::Yield();
    }
    poster.Join();
    HCHECK_ASSERT(gate->executed() == 1);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// With the gate closed, posted work must not run until Exit — and must run
// exactly once then.
TEST(SoftIrqGateHcheck, ClosedGateDefersUntilExit) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto gate = std::make_shared<Gate>();
    auto ran = std::make_shared<hcheck::Atomic<int>>(0);
    auto posted = std::make_shared<hcheck::Atomic<int>>(0);
    gate->Enter();
    hcheck::Thread poster = hcheck::Spawn([gate, ran, posted] {
      gate->Post([ran] { ran->store(1, std::memory_order_relaxed); });
      posted->store(1, std::memory_order_release);
    });
    // Wait for the post to land, polling all the while: the closed gate must
    // not run it.
    while (posted->load(std::memory_order_acquire) == 0) {
      gate->Poll();
      hcheck::Yield();
    }
    gate->Poll();
    HCHECK_ASSERT(ran->load(std::memory_order_relaxed) == 0);
    gate->Exit();  // opens the gate: the deferred work runs here
    HCHECK_ASSERT(ran->load(std::memory_order_relaxed) == 1);
    HCHECK_ASSERT(gate->executed() == 1);
    poster.Join();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Two remote posters: both items run, in some order, none twice.
TEST(SoftIrqGateHcheck, TwoPostersBothRun) {
  hcheck::Options opts;
  opts.max_schedules = 25000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto gate = std::make_shared<Gate>();
    auto ran = std::make_shared<hcheck::Atomic<int>>(0);
    auto post_one = [gate, ran] {
      gate->Post([ran] { ran->fetch_add(1, std::memory_order_relaxed); });
    };
    hcheck::Thread a = hcheck::Spawn(post_one);
    hcheck::Thread b = hcheck::Spawn(post_one);
    while (ran->load(std::memory_order_relaxed) < 2) {
      gate->Poll();
      hcheck::Yield();
    }
    a.Join();
    b.Join();
    HCHECK_ASSERT(ran->load(std::memory_order_relaxed) == 2);
    HCHECK_ASSERT(gate->executed() == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

}  // namespace
