// Model-checks the MCS lock family (classic + HURRICANE H1/H2) on the hcheck
// weak-memory model: mutual exclusion, FIFO handover, quiescence, and — for
// the swap-only H2 release — the usurper repair protocol.
//
// The invariant helpers (MutualExclusion, FifoOrder) keep plain state; that
// is sound because hcheck's scheduler is cooperative — exactly one virtual
// thread runs between schedule points.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/mcs_locks.h"

namespace {

using McsLock = hlock::BasicMcsLock<hcheck::Platform>;
using McsH1Lock = hlock::BasicMcsH1Lock<hcheck::Platform>;
using McsH2Lock = hlock::BasicMcsH2Lock<hcheck::Platform>;

TEST(McsLocksHcheck, ClassicMutualExclusion) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto lock = std::make_shared<McsLock>();
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [lock, mx] {
      McsLock::QNode node;
      lock->lock(node);
      mx->Enter();
      mx->Exit();
      lock->unlock(node);
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// FIFO handover.  Enqueue order is forced by construction: the body holds the
// lock, waits until T1 has taken its queue position (the Enqueue/WaitForGrant
// split makes that moment observable), and only then releases T2 into the
// queue — so grants must come back in T1, T2 order in every schedule.
TEST(McsLocksHcheck, ClassicFifoHandover) {
  hcheck::Options opts;
  opts.max_schedules = 20000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto lock = std::make_shared<McsLock>();
    auto fifo = std::make_shared<hcheck::FifoOrder>();
    auto t1_queued = std::make_shared<hcheck::Atomic<int>>(0);
    auto node0 = std::make_shared<McsLock::QNode>();
    HCHECK_ASSERT(lock->Enqueue(*node0));  // uncontended: acquired immediately

    hcheck::Thread t1 = hcheck::Spawn([lock, fifo, t1_queued] {
      McsLock::QNode node;
      const bool immediate = lock->Enqueue(node);
      HCHECK_ASSERT(!immediate);  // the body holds the lock
      t1_queued->store(1, std::memory_order_release);
      lock->WaitForGrant(node);
      fifo->Granted(1);
      lock->unlock(node);
    });
    while (t1_queued->load(std::memory_order_acquire) == 0) {
      hcheck::Yield();
    }
    fifo->Enqueued(1);
    fifo->Enqueued(2);
    hcheck::Thread t2 = hcheck::Spawn([lock, fifo] {
      McsLock::QNode node;
      lock->lock(node);
      fifo->Granted(2);
      lock->unlock(node);
    });
    lock->unlock(*node0);
    t1.Join();
    t2.Join();
    HCHECK_ASSERT(fifo->quiesced());
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

template <class Lock>
void TwoThreadMutex() {
  auto lock = std::make_shared<Lock>();
  auto mx = std::make_shared<hcheck::MutualExclusion>();
  auto worker = [lock, mx] {
    lock->lock();
    mx->Enter();
    mx->Exit();
    lock->unlock();
  };
  hcheck::Thread t = hcheck::Spawn(worker);
  worker();
  t.Join();
  HCHECK_ASSERT(mx->entries() == 2);
  // Quiescence: uncontended try_lock must succeed again.
  HCHECK_ASSERT(lock->try_lock());
  lock->unlock();
}

TEST(McsLocksHcheck, H1MutualExclusion) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, TwoThreadMutex<McsH1Lock>);
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

TEST(McsLocksHcheck, H2MutualExclusionAndRepair) {
  // Accumulate repairs() across schedules: the swap-only release must take
  // its usurper-repair path in at least one explored interleaving.
  auto total_repairs = std::make_shared<std::uint64_t>(0);
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [total_repairs] {
    auto lock = std::make_shared<McsH2Lock>();
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [lock, mx] {
      lock->lock();
      mx->Enter();
      mx->Exit();
      lock->unlock();
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(lock->try_lock());
    lock->unlock();
    *total_repairs += lock->repairs();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
  EXPECT_GT(*total_repairs, 0u)
      << "no explored schedule exercised the swap-only repair path";
}

TEST(McsLocksHcheck, H1ThreeThreads) {
  hcheck::Options opts;
  opts.max_schedules = 20000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto lock = std::make_shared<McsH1Lock>();
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [lock, mx] {
      lock->lock();
      mx->Enter();
      mx->Exit();
      lock->unlock();
    };
    hcheck::Thread a = hcheck::Spawn(worker);
    hcheck::Thread b = hcheck::Spawn(worker);
    worker();
    a.Join();
    b.Join();
    HCHECK_ASSERT(mx->entries() == 3);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

}  // namespace
