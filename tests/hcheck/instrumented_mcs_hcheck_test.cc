// Model-checks the hprof instrumentation hooks: attaching a LockSiteStats to
// the MCS locks must not perturb mutual exclusion or quiescence on the hcheck
// weak-memory model, and the recorded counts must reconcile with what the
// schedule actually did.
//
// The hooks are sound under hcheck because recording uses plain std::atomic
// operations (invisible to the checker's schedule explorer) and introduces no
// schedule points: the checker explores exactly the same interleavings as for
// an uninstrumented lock.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/mcs_locks.h"
#include "src/hprof/lock_site.h"

namespace {

using McsLock = hlock::BasicMcsLock<hcheck::Platform>;
using McsH2Lock = hlock::BasicMcsH2Lock<hcheck::Platform>;

TEST(InstrumentedMcsHcheck, ClassicMutualExclusionWithSite) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto site = std::make_shared<hprof::LockSiteStats>("hcheck/classic");
    auto lock = std::make_shared<McsLock>();
    lock->set_site(site.get());
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [lock, mx] {
      McsLock::QNode node;
      lock->lock(node);
      mx->Enter();
      mx->Exit();
      lock->unlock(node);
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
    // The site saw every acquisition, and every one also released.
    HCHECK_ASSERT(site->acquisitions() == 2);
    HCHECK_ASSERT(site->contended() + site->uncontended() == 2);
    HCHECK_ASSERT(site->hold().count() == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

TEST(InstrumentedMcsHcheck, H2MutualExclusionWithSite) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto site = std::make_shared<hprof::LockSiteStats>("hcheck/h2");
    auto lock = std::make_shared<McsH2Lock>();
    lock->set_site(site.get());
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [lock, mx] {
      lock->lock();
      mx->Enter();
      mx->Exit();
      lock->unlock();
    };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(mx->entries() == 2);
    // Quiescence with the site still attached: try_lock records too.
    HCHECK_ASSERT(lock->try_lock());
    lock->unlock();
    HCHECK_ASSERT(site->acquisitions() == 3);
    HCHECK_ASSERT(site->hold().count() == 3);
    // With two distinct thread ids, every owner transition is classified.
    HCHECK_ASSERT(site->handoffs(hprof::Handoff::kSameProcessor) +
                      site->handoffs(hprof::Handoff::kSameCluster) +
                      site->handoffs(hprof::Handoff::kCrossCluster) ==
                  2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

TEST(InstrumentedMcsHcheck, H2ThreeThreadsQueueDepthBounded) {
  hcheck::Options opts;
  opts.max_schedules = 20000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto site = std::make_shared<hprof::LockSiteStats>("hcheck/h2-3t");
    auto lock = std::make_shared<McsH2Lock>();
    lock->set_site(site.get());
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    auto worker = [lock, mx] {
      lock->lock();
      mx->Enter();
      mx->Exit();
      lock->unlock();
    };
    hcheck::Thread a = hcheck::Spawn(worker);
    hcheck::Thread b = hcheck::Spawn(worker);
    worker();
    a.Join();
    b.Join();
    HCHECK_ASSERT(mx->entries() == 3);
    HCHECK_ASSERT(site->acquisitions() == 3);
    // At most two threads can ever be queued behind the holder.
    HCHECK_ASSERT(site->max_queue_depth() <= 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

}  // namespace
