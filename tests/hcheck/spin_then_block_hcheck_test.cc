// Model-checks hlock::BasicSpinThenBlockLock — the headline result of the
// hcheck harness: the pre-fix lock (no seq_cst fences on the waiters_/locked_
// Dekker pair) loses a wakeup on a schedule the checker finds in milliseconds,
// while the fixed lock survives exhaustive bounded exploration.
//
// The bug (kDekkerFix = false compiles the original shape):
//
//   waiter                         releaser
//   waiters_.fetch_add(1, rlx)     locked_.store(false, rel)
//   TryAcquire() -> fails          waiters_.load(rlx) -> reads stale 0
//   cv.wait()                      ... skips notify
//
// Nothing orders the waiter's increment before the releaser's load: the
// releaser may use a value of waiters_ from before the increment (a store
// buffer on x86, plain reordering elsewhere), skip the notify, and leave the
// waiter parked forever.  The fix inserts seq_cst fences after the increment
// and after the release store, making the pair a proper Dekker handshake.

#include <gtest/gtest.h>

#include <memory>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/spin_then_block.h"

namespace {

using BuggyLock = hlock::BasicSpinThenBlockLock<hcheck::Platform, /*kDekkerFix=*/false>;
using FixedLock = hlock::BasicSpinThenBlockLock<hcheck::Platform, /*kDekkerFix=*/true>;

// One holder, one contender that must take the blocking path (spin_rounds=0).
template <class Lock>
void HolderAndBlockedWaiter() {
  auto lock = std::make_shared<Lock>(/*spin_rounds=*/0);
  lock->lock();
  hcheck::Thread t = hcheck::Spawn([lock] {
    lock->lock();
    lock->unlock();
  });
  lock->unlock();
  t.Join();
  // Quiescence: the lock must be free again.
  HCHECK_ASSERT(lock->try_lock());
  lock->unlock();
}

TEST(SpinThenBlockHcheck, PreFixLockLosesWakeup) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, HolderAndBlockedWaiter<BuggyLock>);
  ASSERT_TRUE(res.failed)
      << "checker failed to reproduce the known lost wakeup on the pre-fix lock";
  EXPECT_EQ(res.kind, "lost-signal") << res.message << "\n" << res.trace;
  // The failure must carry enough to replay it.
  EXPECT_NE(res.message.find("path="), std::string::npos) << res.message;
}

TEST(SpinThenBlockHcheck, FixedLockPassesExhaustively) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, HolderAndBlockedWaiter<FixedLock>);
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted) << "schedule space unexpectedly large: "
                             << res.schedules_run << " schedules";
}

// Two contenders plus the initial holder: exercises notify_one with multiple
// waiters and the waiters_ counter at values > 1.
TEST(SpinThenBlockHcheck, FixedLockTwoWaiters) {
  hcheck::Options opts;
  opts.max_schedules = 40000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto lock = std::make_shared<FixedLock>(/*spin_rounds=*/0);
    auto mx = std::make_shared<hcheck::MutualExclusion>();
    lock->lock();
    auto contender = [lock, mx] {
      lock->lock();
      mx->Enter();
      mx->Exit();
      lock->unlock();
    };
    hcheck::Thread a = hcheck::Spawn(contender);
    hcheck::Thread b = hcheck::Spawn(contender);
    lock->unlock();
    a.Join();
    b.Join();
    HCHECK_ASSERT(lock->try_lock());
    lock->unlock();
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// The fixed lock also holds up under seeded-random exploration with a deeper
// preemption budget than DFS uses.
TEST(SpinThenBlockHcheck, FixedLockRandomSchedules) {
  hcheck::Options opts;
  opts.random_schedules = 1500;
  opts.seed = 12345;
  opts.preemption_bound = 4;
  hcheck::Result res = hcheck::Check(opts, HolderAndBlockedWaiter<FixedLock>);
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// And the buggy lock is found by random mode too (a failure seed is printed
// and must replay) — demonstrating the beyond-DFS strategy on the real bug.
TEST(SpinThenBlockHcheck, PreFixLockFoundByRandomMode) {
  hcheck::Options opts;
  opts.random_schedules = 4000;
  opts.seed = 1;
  hcheck::Result res = hcheck::Check(opts, HolderAndBlockedWaiter<BuggyLock>);
  ASSERT_TRUE(res.failed) << "random mode missed the lost wakeup in 4000 schedules";

  hcheck::Options replay;
  replay.random_schedules = 1;
  replay.seed = res.seed;
  hcheck::Result again = hcheck::Check(replay, HolderAndBlockedWaiter<BuggyLock>);
  EXPECT_TRUE(again.failed) << "reported seed did not replay";
  EXPECT_EQ(again.kind, "lost-signal");
}

}  // namespace
