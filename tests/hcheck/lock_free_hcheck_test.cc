// Model-checks the lock-free leaf structures (Section 5.3): counter update
// atomicity and Treiber-stack conservation (no lost or duplicated nodes).

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>

#include "src/hcheck/checker.h"
#include "src/hcheck/platform.h"
#include "src/hlock/lock_free.h"

namespace {

using Counter = hlock::BasicLockFreeCounter<hcheck::Platform>;
using Node = hlock::BasicLockFreeNode<hcheck::Platform>;
using FreeList = hlock::BasicLockFreeFreeList<hcheck::Platform>;

TEST(LockFreeHcheck, CounterUpdatesAreAtomic) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto counter = std::make_shared<Counter>();
    auto worker = [counter] { counter->Update([](std::int64_t v) { return v + 1; }); };
    hcheck::Thread t = hcheck::Spawn(worker);
    worker();
    t.Join();
    HCHECK_ASSERT(counter->Read() == 2);
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Two threads pop and push back nodes concurrently; at quiescence the stack
// must hold exactly the original nodes — the versioned CAS must not lose a
// node or hand the same node to both threads.
TEST(LockFreeHcheck, FreeListConservation) {
  hcheck::Options opts;
  opts.max_schedules = 60000;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto list = std::make_shared<FreeList>();
    auto nodes = std::make_shared<std::array<Node, 3>>();
    for (auto& n : *nodes) {
      list->Push(&n);
    }
    auto cycler = [list] {
      Node* n = list->Pop();
      HCHECK_ASSERT(n != nullptr);  // 3 nodes, 2 threads: never empty
      list->Push(n);
    };
    hcheck::Thread t = hcheck::Spawn(cycler);
    cycler();
    t.Join();
    // Drain: exactly the three distinct original nodes come back out.
    std::set<Node*> seen;
    for (int i = 0; i < 3; ++i) {
      Node* n = list->Pop();
      HCHECK_ASSERT(n != nullptr);
      HCHECK_ASSERT(seen.insert(n).second);  // no duplicates
    }
    HCHECK_ASSERT(list->Pop() == nullptr);
    HCHECK_ASSERT(list->empty());
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

// Concurrent pop/pop on a two-node stack: both threads must get distinct
// nodes.
TEST(LockFreeHcheck, ConcurrentPopsGetDistinctNodes) {
  hcheck::Options opts;
  hcheck::Result res = hcheck::Check(opts, [] {
    auto list = std::make_shared<FreeList>();
    auto nodes = std::make_shared<std::array<Node, 2>>();
    auto got = std::make_shared<hcheck::Atomic<Node*>>(nullptr);
    list->Push(&(*nodes)[0]);
    list->Push(&(*nodes)[1]);
    hcheck::Thread t = hcheck::Spawn([list, got] {
      got->store(list->Pop(), std::memory_order_release);
    });
    Node* mine = list->Pop();
    t.Join();
    Node* theirs = got->load(std::memory_order_acquire);
    HCHECK_ASSERT(mine != nullptr);
    HCHECK_ASSERT(theirs != nullptr);
    HCHECK_ASSERT(mine != theirs);
    HCHECK_ASSERT(list->empty());
  });
  EXPECT_FALSE(res.failed) << res.message << "\n" << res.trace;
}

}  // namespace
