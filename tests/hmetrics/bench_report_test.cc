// BenchReport round-trip and schema-validation tests: every bench binary
// emits this document shape, and run_all.sh / tooling trusts Validate() to
// reject anything that drifted.

#include "src/hmetrics/bench_report.h"

#include <gtest/gtest.h>

#include <string>

#include "src/hmetrics/json.h"

namespace hmetrics {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonParser::Parse(text, &doc, &error)) << error << "\n" << text;
  return doc;
}

TEST(BenchReport, RoundTripValidates) {
  BenchReport report("fig5_lock_contention");
  report.SetParam("hold_us", 25).SetParam("smoke", 0);
  report.SetEnv("build", "test");
  report.AddSeries("response_us", {{"lock", "h2-mcs"}, {"hold_us", "25"}})
      .AddPoint({{"p", 1}, {"w_us", 4.1}})
      .AddPoint({{"p", 16}, {"w_us", 230.4}});
  report.AddSeries("starvation", {{"lock", "ttas"}}).AddPoint({{"frac", 0.25}});

  const JsonValue doc = MustParse(report.ToJson());
  std::string error;
  EXPECT_TRUE(BenchReport::Validate(doc, &error)) << error;

  EXPECT_EQ(doc["schema"].string_value, kBenchReportSchema);
  EXPECT_EQ(doc["bench"].string_value, "fig5_lock_contention");
  EXPECT_DOUBLE_EQ(doc["params"]["hold_us"].number, 25.0);
  EXPECT_EQ(doc["env"]["build"].string_value, "test");
  ASSERT_EQ(doc["series"].array.size(), 2u);
  const JsonValue& s0 = doc["series"].at(0);
  EXPECT_EQ(s0["name"].string_value, "response_us");
  EXPECT_EQ(s0["labels"]["lock"].string_value, "h2-mcs");
  ASSERT_EQ(s0["points"].array.size(), 2u);
  EXPECT_DOUBLE_EQ(s0["points"].at(1)["w_us"].number, 230.4);
}

TEST(BenchReport, EmptyReportStillValid) {
  // A bench with no series yet (or one that measured nothing under --smoke)
  // still emits a schema-conforming document.
  BenchReport report("empty_bench");
  const JsonValue doc = MustParse(report.ToJson());
  std::string error;
  EXPECT_TRUE(BenchReport::Validate(doc, &error)) << error;
  EXPECT_TRUE(doc["series"].array.empty());
  // The default env carries the simulated-machine tag.
  EXPECT_FALSE(doc["env"]["sim"].string_value.empty());
}

TEST(BenchReport, ValidateRejectsWrongSchemaTag) {
  const JsonValue doc = MustParse(
      R"({"schema":"something-else/9","bench":"x","params":{},"series":[],"env":{}})");
  std::string error;
  EXPECT_FALSE(BenchReport::Validate(doc, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(BenchReport, ValidateRejectsNonObject) {
  const JsonValue doc = MustParse("[1,2,3]");
  std::string error;
  EXPECT_FALSE(BenchReport::Validate(doc, &error));
}

TEST(BenchReport, ValidateRejectsNonNumericParam) {
  const JsonValue doc = MustParse(
      R"({"schema":"hurricane-bench-report/1","bench":"x",)"
      R"("params":{"hold":"25us"},"series":[],"env":{}})");
  std::string error;
  EXPECT_FALSE(BenchReport::Validate(doc, &error));
  EXPECT_NE(error.find("hold"), std::string::npos) << error;
}

TEST(BenchReport, ValidateRejectsSeriesWithoutLabels) {
  const JsonValue doc = MustParse(
      R"({"schema":"hurricane-bench-report/1","bench":"x","params":{},)"
      R"("series":[{"name":"s","points":[]}],"env":{}})");
  std::string error;
  EXPECT_FALSE(BenchReport::Validate(doc, &error));
  EXPECT_NE(error.find("labels"), std::string::npos) << error;
}

TEST(BenchReport, ValidateRejectsNonNumericPointField) {
  const JsonValue doc = MustParse(
      R"({"schema":"hurricane-bench-report/1","bench":"x","params":{},)"
      R"("series":[{"name":"s","labels":{},"points":[{"w_us":"fast"}]}],"env":{}})");
  std::string error;
  EXPECT_FALSE(BenchReport::Validate(doc, &error));
  EXPECT_NE(error.find("w_us"), std::string::npos) << error;
}

TEST(BenchReport, ValidateRejectsMissingEnv) {
  const JsonValue doc = MustParse(
      R"({"schema":"hurricane-bench-report/1","bench":"x","params":{},"series":[]})");
  std::string error;
  EXPECT_FALSE(BenchReport::Validate(doc, &error));
  EXPECT_NE(error.find("env"), std::string::npos) << error;
}

}  // namespace
}  // namespace hmetrics
