// Writer/parser round-trip tests: the parser exists to read our own writer's
// output back, so every escape and number form the writer can emit must
// survive a round trip, and malformed input must be rejected with an error.

#include "src/hmetrics/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace hmetrics {
namespace {

TEST(JsonWriter, NestedStructure) {
  JsonWriter w;
  w.BeginObject();
  w.Field("a", 1.0);
  w.Key("b");
  w.BeginArray();
  w.Number(1);
  w.Number(2);
  w.BeginObject();
  w.Field("c", "x");
  w.EndObject();
  w.EndArray();
  w.Field("d", true);
  w.Key("e");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[1,2,{"c":"x"}],"d":true,"e":null})");
}

TEST(JsonWriter, NumberFormatting) {
  std::string out;
  JsonNumber(42.0, &out);
  EXPECT_EQ(out, "42");  // integral doubles print without a mantissa
  out.clear();
  JsonNumber(-7.0, &out);
  EXPECT_EQ(out, "-7");
  out.clear();
  JsonNumber(std::numeric_limits<double>::infinity(), &out);
  EXPECT_EQ(out, "0");  // JSON has no inf/nan
  out.clear();
  JsonNumber(std::numeric_limits<double>::quiet_NaN(), &out);
  EXPECT_EQ(out, "0");
}

TEST(JsonRoundTrip, StringEscaping) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctl\x01 end";
  JsonWriter w;
  w.BeginObject();
  w.Field("s", nasty);
  w.EndObject();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(w.str(), &doc, &error)) << error;
  EXPECT_EQ(doc["s"].string_value, nasty);
}

TEST(JsonRoundTrip, FractionalNumberPrecision) {
  const double v = 230.43751234567891;
  JsonWriter w;
  w.BeginArray();
  w.Number(v);
  w.Number(-0.0625);
  w.Number(1e-9);
  w.EndArray();

  JsonValue doc;
  ASSERT_TRUE(JsonParser::Parse(w.str(), &doc));
  ASSERT_EQ(doc.array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at(0).number, v);  // %.17g round-trips doubles
  EXPECT_DOUBLE_EQ(doc.at(1).number, -0.0625);
  EXPECT_DOUBLE_EQ(doc.at(2).number, 1e-9);
}

TEST(JsonParser, Literals) {
  JsonValue doc;
  ASSERT_TRUE(JsonParser::Parse("[true,false,null]", &doc));
  EXPECT_EQ(doc.at(0).kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(doc.at(0).bool_value);
  EXPECT_FALSE(doc.at(1).bool_value);
  EXPECT_EQ(doc.at(2).kind, JsonValue::Kind::kNull);
}

TEST(JsonParser, SafeMissLookups) {
  JsonValue doc;
  ASSERT_TRUE(JsonParser::Parse(R"({"a":{"b":3}})", &doc));
  EXPECT_DOUBLE_EQ(doc["a"]["b"].number, 3.0);
  // Chained lookups through missing keys land on null, never UB.
  EXPECT_EQ(doc["nope"]["deeper"].kind, JsonValue::Kind::kNull);
  EXPECT_FALSE(doc.Has("nope"));
  EXPECT_EQ(doc.at(99).kind, JsonValue::Kind::kNull);
}

TEST(JsonParser, RejectsMalformedInput) {
  const char* bad[] = {
      "{",           // unterminated object
      "[1,",         // unterminated array
      R"({"a":})",   // missing value
      "1 x",         // trailing garbage
      "tru",         // truncated literal
      R"("abc)",     // unterminated string
      R"({"a" 1})",  // missing colon
      "",            // empty input
  };
  for (const char* text : bad) {
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(JsonParser::Parse(text, &doc, &error)) << "input: " << text;
    EXPECT_FALSE(error.empty()) << "input: " << text;
  }
}

TEST(JsonParser, WhitespaceTolerant) {
  JsonValue doc;
  ASSERT_TRUE(JsonParser::Parse("  {\n\t\"a\" : [ 1 , 2 ] ,\r\n \"b\":{} } ", &doc));
  EXPECT_EQ(doc["a"].array.size(), 2u);
  EXPECT_TRUE(doc["b"].is_object());
}

}  // namespace
}  // namespace hmetrics
