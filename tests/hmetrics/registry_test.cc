// Registry tests: series identity is (name, label set), lookups return
// stable references (hot paths cache them), and export parses back.

#include "src/hmetrics/registry.h"

#include <gtest/gtest.h>

#include <string>

#include "src/hmetrics/json.h"

namespace hmetrics {
namespace {

TEST(Registry, LabelsDistinguishSeries) {
  Registry reg;
  reg.counter("lock.acquisitions", {{"lock", "ttas"}}).Add(3);
  reg.counter("lock.acquisitions", {{"lock", "h2-mcs"}}).Add(5);
  reg.counter("lock.acquisitions").Increment();  // unlabeled is its own series

  EXPECT_EQ(reg.counter("lock.acquisitions", {{"lock", "ttas"}}).value(), 3u);
  EXPECT_EQ(reg.counter("lock.acquisitions", {{"lock", "h2-mcs"}}).value(), 5u);
  EXPECT_EQ(reg.counter("lock.acquisitions").value(), 1u);
  EXPECT_EQ(reg.series_count(), 3u);
}

TEST(Registry, ReferencesStayStableAcrossInserts) {
  Registry reg;
  Counter& cached = reg.counter("kernel.rpcs");
  LatencyHistogram& hist = reg.histogram("kernel.rpc_batch_depth");
  // Creating many more series must not move the cached elements (the kernel
  // caches these pointers and bumps them on the hot path).
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i)).Increment();
    reg.histogram("hfiller." + std::to_string(i)).Record(1);
  }
  cached.Add(7);
  hist.Record(4);
  EXPECT_EQ(&cached, &reg.counter("kernel.rpcs"));
  EXPECT_EQ(&hist, &reg.histogram("kernel.rpc_batch_depth"));
  EXPECT_EQ(reg.counter("kernel.rpcs").value(), 7u);
  EXPECT_EQ(reg.histogram("kernel.rpc_batch_depth").count(), 1u);
}

TEST(Registry, GaugeHoldsLastValue) {
  Registry reg;
  reg.gauge("machine.module_utilization", {{"module", "0"}}).Set(0.25);
  reg.gauge("machine.module_utilization", {{"module", "0"}}).Set(0.75);
  EXPECT_DOUBLE_EQ(reg.gauge("machine.module_utilization", {{"module", "0"}}).value(),
                   0.75);
}

TEST(Registry, ToJsonParsesBack) {
  Registry reg;
  reg.counter("kernel.faults", {{"test", "independent"}}).Add(12);
  reg.gauge("util").Set(0.5);
  LatencyHistogram& h = reg.histogram("lock.acquire_ticks", {{"lock", "ttas"}});
  for (std::uint64_t v : {10, 20, 30}) {
    h.Record(v);
  }

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(reg.ToJson(), &doc, &error)) << error;
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 3u);

  bool saw_counter = false;
  bool saw_gauge = false;
  bool saw_hist = false;
  for (const JsonValue& s : doc.array) {
    ASSERT_TRUE(s.is_object());
    const std::string& type = s["type"].string_value;
    if (type == "counter") {
      saw_counter = true;
      EXPECT_EQ(s["name"].string_value, "kernel.faults");
      EXPECT_EQ(s["labels"]["test"].string_value, "independent");
      EXPECT_DOUBLE_EQ(s["value"].number, 12.0);
    } else if (type == "gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(s["value"].number, 0.5);
    } else if (type == "histogram") {
      saw_hist = true;
      EXPECT_EQ(s["labels"]["lock"].string_value, "ttas");
      EXPECT_DOUBLE_EQ(s["count"].number, 3.0);
      EXPECT_DOUBLE_EQ(s["sum"].number, 60.0);
      EXPECT_DOUBLE_EQ(s["p50"].number, 20.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(RegistryTest, ResetAllZeroesEverySeriesInPlace) {
  Registry reg;
  Counter& c = reg.counter("ops", {{"lock", "mcs"}});
  Gauge& g = reg.gauge("util");
  LatencyHistogram& h = reg.histogram("wait");
  h.set_sample_cap(2);
  c.Add(7);
  g.Set(0.75);
  h.Record(10);
  h.Record(20);
  h.Record(30);  // dropped by the cap

  reg.ResetAll();

  // The same references stay valid and read as zero...
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.samples_dropped(), 0u);
  // ...no series was deleted, and the handles still record.
  EXPECT_EQ(reg.series_count(), 3u);
  c.Increment();
  h.Record(5);
  EXPECT_EQ(reg.counter("ops", {{"lock", "mcs"}}).value(), 1u);
  EXPECT_EQ(reg.histogram("wait").count(), 1u);
}

}  // namespace
}  // namespace hmetrics
