// End-to-end trace tests: a traced Figure-5 lock-stress run and a traced
// kernel RPC exchange must export Chrome trace_event JSON that parses back
// and contains the expected spans -- and attaching a trace must not perturb
// simulated timing (the trace is a pure observer).

#include "src/hmetrics/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "src/hkernel/kernel.h"
#include "src/hmetrics/json.h"
#include "src/hsim/engine.h"
#include "src/hsim/locks/stress.h"
#include "src/hsim/machine.h"
#include "src/hsim/types.h"

namespace hmetrics {
namespace {

// Counts events with the given name/ph in a parsed Chrome trace document.
int CountEvents(const JsonValue& doc, const std::string& name, const std::string& ph) {
  int n = 0;
  for (const JsonValue& e : doc["traceEvents"].array) {
    if (e["name"].string_value == name && e["ph"].string_value == ph) {
      ++n;
    }
  }
  return n;
}

hsim::LockStressParams SmallStressParams() {
  hsim::LockStressParams params;
  params.kind = hsim::LockKind::kMcsH2;
  params.processors = 4;
  params.hold = hsim::UsToTicks(10);
  params.warmup = hsim::UsToTicks(100);
  params.duration = hsim::UsToTicks(500);
  return params;
}

TEST(TraceSessionTest, BasicSpanExport) {
  TraceSession trace(kTraceLocks, /*ticks_per_us=*/16.0);
  const TraceSession::SpanId id = trace.BeginSpan(kTraceLocks, "lock/acquire", 3, 160);
  trace.AddArg(id, "lock", "ttas");
  trace.EndSpan(id, 173);
  trace.Instant(kTraceLocks, "lock/release", 3, 400);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(trace.ToChromeJson(), &doc, &error)) << error;
  ASSERT_EQ(doc["traceEvents"].array.size(), 2u);

  const JsonValue& span = doc["traceEvents"].at(0);
  EXPECT_EQ(span["ph"].string_value, "X");
  EXPECT_EQ(span["cat"].string_value, "locks");
  EXPECT_DOUBLE_EQ(span["ts"].number, 10.0);        // 160 ticks / 16 ticks-per-us
  EXPECT_DOUBLE_EQ(span["dur"].number, 13.0 / 16.0);
  EXPECT_DOUBLE_EQ(span["tid"].number, 3.0);
  EXPECT_EQ(span["args"]["lock"].string_value, "ttas");

  const JsonValue& inst = doc["traceEvents"].at(1);
  EXPECT_EQ(inst["ph"].string_value, "i");
  EXPECT_DOUBLE_EQ(inst["ts"].number, 25.0);
}

TEST(TraceSessionTest, LockStressExportsAcquireSpans) {
  // The Figure-5 acceptance path: trace a contended run, export Chrome JSON,
  // and find lock-acquire spans in it.
  TraceSession trace(kTraceLocks);
  hsim::LockStressParams params = SmallStressParams();
  params.trace = &trace;
  const hsim::LockStressResult result = hsim::RunLockStress(params);
  ASSERT_GT(result.acquisitions, 0u);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(trace.ToChromeJson(), &doc, &error)) << error;

  const int acquires = CountEvents(doc, "lock/acquire", "X");
  const int releases = CountEvents(doc, "lock/release", "i");
  EXPECT_GT(acquires, 0);
  EXPECT_GT(releases, 0);
  // One release instant per completed acquire span (the final holds may still
  // be open at the deadline, so allow a small gap).
  EXPECT_GE(acquires, releases);
  EXPECT_LE(acquires - releases, static_cast<int>(params.processors));

  for (const JsonValue& e : doc["traceEvents"].array) {
    if (e["name"].string_value != "lock/acquire") {
      continue;
    }
    EXPECT_EQ(e["cat"].string_value, "locks");
    EXPECT_TRUE(e["ts"].is_number());
    EXPECT_TRUE(e["dur"].is_number());
    EXPECT_GE(e["dur"].number, 0.0);
    // Track ids are processor ids; only `processors` lanes participate.
    EXPECT_LT(e["tid"].number, static_cast<double>(params.processors));
  }
}

TEST(TraceSessionTest, DisabledCategoryRecordsNothing) {
  // A session listening only for RPC events attached to a lock run stays
  // empty: producers test the category before recording.
  TraceSession trace(kTraceRpc);
  hsim::LockStressParams params = SmallStressParams();
  params.trace = &trace;
  hsim::RunLockStress(params);
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(TraceSessionTest, TracedRunIsBitIdentical) {
  hsim::LockStressParams params = SmallStressParams();
  const hsim::LockStressResult plain = hsim::RunLockStress(params);

  TraceSession trace(kTraceAll & ~kTraceMemory);
  params.trace = &trace;
  const hsim::LockStressResult traced = hsim::RunLockStress(params);

  EXPECT_EQ(plain.acquisitions, traced.acquisitions);
  EXPECT_EQ(plain.window_ops, traced.window_ops);
  EXPECT_EQ(plain.acquire_latency.count(), traced.acquire_latency.count());
  EXPECT_DOUBLE_EQ(plain.little_response_us(), traced.little_response_us());
  EXPECT_EQ(plain.bus_wait, traced.bus_wait);
  EXPECT_EQ(plain.mem_wait, traced.mem_wait);
}

TEST(TraceSessionTest, KernelRpcExportsCallAndHandleSpans) {
  hsim::Engine engine;
  hsim::Machine machine(&engine, hsim::MachineConfig{});
  hkernel::KernelSystem system(&machine, [] {
    hkernel::KernelConfig c;
    c.cluster_size = 4;
    return c;
  }());

  TraceSession trace(kTraceRpc);
  machine.set_trace(&trace);

  bool stop = false;
  for (hsim::ProcId p = 1; p < machine.num_processors(); ++p) {
    engine.Spawn(system.IdleLoop(machine.processor(p), &stop));
  }
  engine.Spawn([](hkernel::KernelSystem* sys, hsim::Machine* m,
                  bool* stop_flag) -> hsim::Task<void> {
    co_await sys->NullRpc(m->processor(0), 1);
    co_await sys->NullRpc(m->processor(0), 2);
    *stop_flag = true;
  }(&system, &machine, &stop));
  engine.RunUntilIdle();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(trace.ToChromeJson(), &doc, &error)) << error;

  EXPECT_EQ(CountEvents(doc, "rpc/call", "X"), 2);
  EXPECT_GE(CountEvents(doc, "rpc/handle", "X"), 2);

  for (const JsonValue& e : doc["traceEvents"].array) {
    if (e["name"].string_value == "rpc/call") {
      EXPECT_EQ(e["cat"].string_value, "rpc");
      EXPECT_EQ(e["args"]["op"].string_value, "null");
      EXPECT_FALSE(e["args"]["target"].string_value.empty());
      EXPECT_GT(e["dur"].number, 0.0);  // a round trip takes simulated time
    } else if (e["name"].string_value == "rpc/handle") {
      EXPECT_EQ(e["args"]["op"].string_value, "null");
    }
  }
}

TEST(TraceSessionTest, OpenSpansExportAsTruncated) {
  TraceSession trace(kTraceLocks, /*ticks_per_us=*/16.0);
  const TraceSession::SpanId id =
      trace.BeginSpan(kTraceLocks, "lock/acquire", 1, 160);
  trace.AddArg(id, "lock", "shared");
  // Never closed: the run ended while the processor was still waiting.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(trace.ToChromeJson(), &doc, &error)) << error;
  const JsonValue& span = doc["traceEvents"].at(0);
  EXPECT_DOUBLE_EQ(span["dur"].number, 0.0);
  EXPECT_TRUE(span["args"]["truncated"].bool_value);
  EXPECT_EQ(span["args"]["lock"].string_value, "shared");
}

TEST(TraceSessionTest, MemoryEventCapDropsAndCounts) {
  TraceSession trace(kTraceAll, 1.0);
  trace.set_memory_event_cap(2);
  EXPECT_NE(trace.BeginSpan(kTraceMemory, "mem/read", 0, 1), TraceSession::kDroppedSpan);
  EXPECT_NE(trace.Instant(kTraceMemory, "mem/write", 0, 2), TraceSession::kDroppedSpan);
  // Beyond the cap: dropped, counted, and safe to use as a span id.
  const TraceSession::SpanId dropped = trace.BeginSpan(kTraceMemory, "mem/read", 0, 3);
  EXPECT_EQ(dropped, TraceSession::kDroppedSpan);
  trace.AddArg(dropped, "addr", "0x10");  // no-op, must not crash
  trace.EndSpan(dropped, 4);
  EXPECT_EQ(trace.Instant(kTraceMemory, "mem/write", 0, 5), TraceSession::kDroppedSpan);
  EXPECT_EQ(trace.dropped_events(), 2u);
  // Non-memory categories have their own (default, far larger) cap.
  EXPECT_NE(trace.Instant(kTraceLocks, "lock/release", 0, 6), TraceSession::kDroppedSpan);
  EXPECT_EQ(trace.event_count(), 3u);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(trace.ToChromeJson(), &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc["droppedMemoryEvents"].number, 2.0);
  // The memory cap did not touch the span counter.
  EXPECT_EQ(trace.dropped_spans(), 0u);
  EXPECT_FALSE(doc.Has("droppedSpans"));
}

TEST(TraceSessionTest, EventCapDropsSpansAndCountsInFooter) {
  TraceSession trace(kTraceAll, 1.0);
  trace.set_event_cap(2);
  const TraceSession::SpanId kept = trace.BeginSpan(kTraceLocks, "lock/acquire", 0, 1);
  trace.EndSpan(kept, 2);
  EXPECT_NE(trace.Instant(kTraceRpc, "rpc/send", 0, 3), TraceSession::kDroppedSpan);
  // Beyond the cap every non-memory category is dropped and counted; the
  // sentinel id stays safe to thread through AddArg/EndSpan.
  const TraceSession::SpanId dropped = trace.BeginSpan(kTraceLocks, "lock/acquire", 0, 4);
  EXPECT_EQ(dropped, TraceSession::kDroppedSpan);
  trace.AddArg(dropped, "lock", "shared");
  trace.EndSpan(dropped, 5);
  EXPECT_EQ(trace.Instant(kTraceKernel, "kernel/fault", 0, 6), TraceSession::kDroppedSpan);
  EXPECT_EQ(trace.dropped_spans(), 2u);
  // The memory category rides its own cap and is still admitted.
  EXPECT_NE(trace.Instant(kTraceMemory, "mem/read", 0, 7), TraceSession::kDroppedSpan);
  EXPECT_EQ(trace.dropped_events(), 0u);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(trace.ToChromeJson(), &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc["droppedSpans"].number, 2.0);
  EXPECT_FALSE(doc.Has("droppedMemoryEvents"));
}

TEST(TraceSessionTest, InstantReturnsIdForArgs) {
  TraceSession trace(kTraceLocks, 1.0);
  const TraceSession::SpanId id = trace.Instant(kTraceLocks, "lock/release", 2, 10);
  trace.AddArg(id, "lock", "pgtbl");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParser::Parse(trace.ToChromeJson(), &doc, &error)) << error;
  EXPECT_EQ(doc["traceEvents"].at(0)["args"]["lock"].string_value, "pgtbl");
}

}  // namespace
}  // namespace hmetrics
