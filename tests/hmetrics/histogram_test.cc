#include "src/hmetrics/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace hmetrics {
namespace {

TEST(LatencyHistogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_DOUBLE_EQ(h.fraction_above(10), 0.0);
}

TEST(LatencyHistogram, SingleSample) {
  LatencyHistogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  // Every percentile of a single sample is that sample.
  EXPECT_EQ(h.percentile(0), 42u);
  EXPECT_EQ(h.percentile(50), 42u);
  EXPECT_EQ(h.percentile(100), 42u);
}

TEST(LatencyHistogram, PercentileEndpoints) {
  LatencyHistogram h;
  for (std::uint64_t v : {10, 20, 30, 40, 50}) {
    h.Record(v);
  }
  EXPECT_EQ(h.percentile(0), 10u);
  EXPECT_EQ(h.percentile(100), 50u);
  // Out-of-range requests clamp instead of reading out of bounds.
  EXPECT_EQ(h.percentile(-5), 10u);
  EXPECT_EQ(h.percentile(250), 50u);
}

TEST(LatencyHistogram, NearestRankRounding) {
  // rank = p/100 * (n-1), rounded half-up: with 5 samples p=50 -> rank 2
  // (exact), p=60 -> rank 2.4 -> 2, p=70 -> rank 2.8 -> 3.
  LatencyHistogram h;
  for (std::uint64_t v : {10, 20, 30, 40, 50}) {
    h.Record(v);
  }
  EXPECT_EQ(h.percentile(50), 30u);
  EXPECT_EQ(h.percentile(60), 30u);
  EXPECT_EQ(h.percentile(70), 40u);
  EXPECT_EQ(h.percentile(95), 50u);
}

TEST(LatencyHistogram, UnsortedInsertOrder) {
  LatencyHistogram h;
  for (std::uint64_t v : {50, 10, 40, 20, 30}) {
    h.Record(v);
  }
  EXPECT_EQ(h.percentile(0), 10u);
  EXPECT_EQ(h.percentile(50), 30u);
  EXPECT_EQ(h.percentile(100), 50u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 50u);
}

TEST(LatencyHistogram, SortCacheInvalidatedByRecord) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(30);
  EXPECT_EQ(h.percentile(100), 30u);  // forces the sort
  h.Record(20);                       // must invalidate the sorted cache
  EXPECT_EQ(h.percentile(50), 20u);
  EXPECT_EQ(h.percentile(100), 30u);
  h.Record(5);
  EXPECT_EQ(h.percentile(0), 5u);
}

TEST(LatencyHistogram, FractionAbove) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.fraction_above(10), 0.0);   // strictly above
  EXPECT_DOUBLE_EQ(h.fraction_above(5), 0.5);    // 6..10
  EXPECT_DOUBLE_EQ(h.fraction_above(0), 1.0);
}

TEST(LatencyHistogram, MergeAcrossShards) {
  // Per-shard recording then a merge must agree with one big histogram.
  LatencyHistogram shard1;
  LatencyHistogram shard2;
  LatencyHistogram all;
  for (std::uint64_t v = 0; v < 100; ++v) {
    ((v % 2 == 0) ? shard1 : shard2).Record(v * 7 % 101);
    all.Record(v * 7 % 101);
  }
  LatencyHistogram merged;
  merged.Merge(shard1);
  merged.Merge(shard2);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.sum(), all.sum());
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
  for (double p : {0.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(merged.percentile(p), all.percentile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogram, MergeIntoQueriedHistogram) {
  LatencyHistogram a;
  a.Record(1);
  EXPECT_EQ(a.percentile(50), 1u);  // sort the cache
  LatencyHistogram b;
  b.Record(100);
  a.Merge(b);  // must invalidate
  EXPECT_EQ(a.percentile(100), 100u);
  EXPECT_EQ(a.count(), 2u);
}

TEST(LatencyHistogram, SampleCapDropsRetentionNotStatistics) {
  LatencyHistogram h;
  h.set_sample_cap(4);
  for (std::uint64_t v = 1; v <= 10; ++v) {
    h.Record(v);
  }
  // Streaming statistics still see all 10 samples...
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 55u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
  // ...but only the first 4 are retained for order statistics.
  EXPECT_EQ(h.samples_dropped(), 6u);
  EXPECT_EQ(h.samples().size(), 4u);
  EXPECT_EQ(h.percentile(100), 4u);
}

TEST(LatencyHistogram, MergeRespectsDestinationCap) {
  LatencyHistogram a;
  a.set_sample_cap(3);
  a.Record(1);
  a.Record(2);
  LatencyHistogram b;
  b.Record(3);
  b.Record(4);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 10u);
  EXPECT_EQ(a.samples().size(), 3u);  // room for one of b's two samples
  EXPECT_EQ(a.samples_dropped(), 1u);
  EXPECT_EQ(a.max(), 4u);
}

TEST(LatencyHistogram, ResetForgetsEverythingButKeepsCap) {
  LatencyHistogram h;
  h.set_sample_cap(2);
  h.Record(5);
  h.Record(6);
  h.Record(7);  // dropped by the cap
  EXPECT_EQ(h.samples_dropped(), 1u);
  h.Reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.samples_dropped(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.sample_cap(), 2u);  // the cap survives
  h.Record(9);
  h.Record(10);
  h.Record(11);
  EXPECT_EQ(h.samples_dropped(), 1u);  // and still applies
}

TEST(LatencyHistogram, RecordNMatchesRepeatedRecord) {
  LatencyHistogram bulk;
  LatencyHistogram loop;
  bulk.RecordN(40, 3);
  bulk.Record(7);
  bulk.RecordN(100, 2);
  bulk.RecordN(55, 0);  // no-op
  for (int i = 0; i < 3; ++i) {
    loop.Record(40);
  }
  loop.Record(7);
  loop.Record(100);
  loop.Record(100);
  EXPECT_EQ(bulk.count(), loop.count());
  EXPECT_EQ(bulk.sum(), loop.sum());
  EXPECT_EQ(bulk.min(), loop.min());
  EXPECT_EQ(bulk.max(), loop.max());
  EXPECT_EQ(bulk.percentile(50), loop.percentile(50));
  EXPECT_EQ(bulk.percentile(99), loop.percentile(99));
  EXPECT_DOUBLE_EQ(bulk.fraction_above(40), loop.fraction_above(40));
}

TEST(LatencyHistogram, RecordNAcrossSampleCap) {
  // A bulk record that crosses the retention cap keeps exact streaming stats,
  // retains only up to the cap, and counts the overflow as dropped.
  LatencyHistogram h;
  h.set_sample_cap(4);
  h.Record(1);
  h.RecordN(10, 6);  // room for 3, drops 3
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 61u);
  EXPECT_EQ(h.samples().size(), 4u);
  EXPECT_EQ(h.samples_dropped(), 3u);
  h.RecordN(99, 5);  // no room at all
  EXPECT_EQ(h.count(), 12u);
  EXPECT_EQ(h.samples_dropped(), 8u);
  EXPECT_EQ(h.max(), 99u);
}

TEST(LatencyHistogram, StreamingStatsWithoutSort) {
  // mean/min/max/sum are streaming: correct even if percentile is never
  // called (no hidden dependency on the sorted cache).
  LatencyHistogram h;
  h.Record(3);
  h.Record(9);
  h.Record(6);
  EXPECT_EQ(h.sum(), 18u);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 9u);
}

TEST(LatencyHistogram, SumSaturatesInsteadOfWrapping) {
  constexpr std::uint64_t kCeiling = std::numeric_limits<std::uint64_t>::max();
  LatencyHistogram h;
  h.Record(kCeiling - 10);
  EXPECT_FALSE(h.sum_overflowed());
  h.Record(100);  // would wrap modulo 2^64
  EXPECT_EQ(h.sum(), kCeiling);
  EXPECT_TRUE(h.sum_overflowed());
  // The count stays exact; only the sum is a floor from here on.
  h.Record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), kCeiling);
}

TEST(LatencyHistogram, RecordNProductOverflowSaturates) {
  // v * n exceeds 64 bits before the sum is even touched: the bulk product
  // itself must saturate, not wrap to a small residue.
  LatencyHistogram h;
  h.RecordN(std::uint64_t{1} << 40, std::uint64_t{1} << 40);
  EXPECT_EQ(h.count(), std::uint64_t{1} << 40);
  EXPECT_EQ(h.sum(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(h.sum_overflowed());
}

TEST(LatencyHistogram, MergePropagatesSaturation) {
  LatencyHistogram overflowed_shard;
  overflowed_shard.RecordN(std::uint64_t{1} << 40, std::uint64_t{1} << 40);
  LatencyHistogram total;
  total.Record(5);
  total.Merge(overflowed_shard);
  EXPECT_TRUE(total.sum_overflowed());
  EXPECT_EQ(total.sum(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(total.count(), (std::uint64_t{1} << 40) + 1);
}

}  // namespace
}  // namespace hmetrics
