#include "src/hsvc/request_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace hsvc {
namespace {

struct Node {
  std::atomic<Node*> mpsc_next{nullptr};
  std::uint64_t tag = 0;
};

TEST(BoundedMpscQueue, FifoSingleThreaded) {
  BoundedMpscQueue<Node> q(8);
  Node nodes[5];
  for (std::uint64_t i = 0; i < 5; ++i) {
    nodes[i].tag = i;
    EXPECT_TRUE(q.TryPush(&nodes[i]));
  }
  EXPECT_EQ(q.depth(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Node* n = q.Pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->tag, i);
  }
  EXPECT_EQ(q.Pop(), nullptr);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedMpscQueue, RejectsAtBoundAndRecoversAfterPop) {
  BoundedMpscQueue<Node> q(2);
  Node a, b, c, d;
  EXPECT_TRUE(q.TryPush(&a));
  EXPECT_TRUE(q.TryPush(&b));
  EXPECT_FALSE(q.TryPush(&c));  // full
  EXPECT_EQ(q.depth(), 2u);     // the failed push backed its reservation out
  ASSERT_EQ(q.Pop(), &a);
  EXPECT_TRUE(q.TryPush(&c));  // slot freed
  EXPECT_FALSE(q.TryPush(&d));
  ASSERT_EQ(q.Pop(), &b);
  ASSERT_EQ(q.Pop(), &c);
  EXPECT_EQ(q.Pop(), nullptr);
}

TEST(BoundedMpscQueue, NodesAreReusableAfterPop) {
  BoundedMpscQueue<Node> q(2);
  Node a, b;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(q.TryPush(&a));
    EXPECT_TRUE(q.TryPush(&b));
    EXPECT_EQ(q.Pop(), &a);
    EXPECT_EQ(q.Pop(), &b);
    EXPECT_EQ(q.Pop(), nullptr);
  }
}

TEST(BoundedMpscQueue, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  BoundedMpscQueue<Node> q(kProducers * kPerProducer);
  // Node is pinned (atomic member): size the pools at construction.
  std::vector<std::vector<Node>> nodes;
  for (int p = 0; p < kProducers; ++p) {
    nodes.emplace_back(kPerProducer);
    for (int i = 0; i < kPerProducer; ++i) {
      nodes[p][i].tag = static_cast<std::uint64_t>(p) * kPerProducer + i;
    }
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.TryPush(&nodes[p][i]));
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Consume concurrently; per-producer FIFO must hold, and every node must
  // arrive exactly once.
  std::vector<std::uint64_t> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    Node* n = q.Pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(n->tag / kPerProducer);
    const std::uint64_t i = n->tag % kPerProducer;
    EXPECT_EQ(i, next_expected[p]) << "per-producer FIFO violated";
    next_expected[p] = i + 1;
    ++received;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(q.Pop(), nullptr);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedMpscQueue, ContendedBoundConservesItems) {
  // Many producers fight for few slots.  Accepted items must all come out
  // (rejected pushes leave no residue), regardless of how the accept/reject
  // races interleave.  depth() may transiently overshoot the bound by one
  // in-flight reservation per producer, so the invariant checked here is
  // conservation, not instantaneous occupancy.
  constexpr std::size_t kBound = 4;
  constexpr int kProducers = 4;
  constexpr int kAttempts = 2000;
  BoundedMpscQueue<Node> q(kBound);
  std::vector<std::vector<Node>> nodes;
  for (int p = 0; p < kProducers; ++p) {
    nodes.emplace_back(kAttempts);
  }
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kAttempts; ++i) {
        if (q.TryPush(&nodes[p][i])) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::uint64_t popped = 0;
  auto consume = [&] {
    while (Node* n = q.Pop()) {
      (void)n;
      ++popped;
    }
  };
  for (auto& t : producers) {
    while (q.depth() > 0) {
      consume();
    }
    t.join();
  }
  consume();
  EXPECT_EQ(popped, accepted.load());
  EXPECT_EQ(q.depth(), 0u);
}

}  // namespace
}  // namespace hsvc
