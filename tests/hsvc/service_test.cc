// End-to-end tests of the hsvc serving runtime: routing, deadlines,
// admission control, read combining, metrics and profiler wiring.

#include "src/hsvc/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/hprof/lock_site.h"

namespace hsvc {
namespace {

// A blocking single-outstanding-request client: submit (retrying rejected
// admissions with the service's own hint) and wait for the completion to
// come back on the free list.
struct SyncClient {
  hlock::LockFreeFreeList done;
  Request req;

  Status Run(Service& svc, OpKind kind, std::uint64_t key, std::uint64_t value,
             hcluster::ClusterId origin) {
    req.completion = &done;
    req.kind = kind;
    req.key = key;
    req.value_in = value;
    req.deadline_ns = 0;  // reuse must not inherit a stale resolved deadline
    while (true) {
      const AdmitResult admit = svc.Submit(&req, origin);
      if (admit.admitted) {
        break;
      }
      ++req.retries;
      std::this_thread::sleep_for(std::chrono::microseconds(admit.retry_after_us));
    }
    hlock::LockFreeNode* node;
    while ((node = done.Pop()) == nullptr) {
      std::this_thread::yield();
    }
    EXPECT_EQ(Request::FromFreeLink(node), &req);
    return req.status;
  }
};

TEST(Service, PutGetRoundtripAcrossClusters) {
  ServiceConfig config;
  config.topology = hcluster::Topology{4, 2};  // 2 clusters of 2
  Service svc(config);
  SyncClient client;

  EXPECT_EQ(client.Run(svc, OpKind::kPut, 10, 77, 0), Status::kOk);
  // Read from the home cluster and from the remote cluster (replication).
  EXPECT_EQ(client.Run(svc, OpKind::kGet, 10, 0, 0), Status::kOk);
  EXPECT_EQ(client.req.value_out, 77u);
  EXPECT_EQ(client.Run(svc, OpKind::kGet, 10, 0, 1), Status::kOk);
  EXPECT_EQ(client.req.value_out, 77u);
  // Overwrite is globally visible (write broadcast reaches the replica).
  EXPECT_EQ(client.Run(svc, OpKind::kPut, 10, 78, 1), Status::kOk);
  EXPECT_EQ(client.Run(svc, OpKind::kGet, 10, 0, 1), Status::kOk);
  EXPECT_EQ(client.req.value_out, 78u);

  EXPECT_EQ(client.Run(svc, OpKind::kGet, 999, 0, 0), Status::kNotFound);
  EXPECT_EQ(svc.served(), 6u);
  EXPECT_EQ(svc.expired(), 0u);
}

TEST(Service, TimestampsAreOrderedOnCompletion) {
  ServiceConfig config;
  config.topology = hcluster::Topology{2, 1};
  Service svc(config);
  SyncClient client;
  ASSERT_EQ(client.Run(svc, OpKind::kPut, 1, 1, 0), Status::kOk);
  EXPECT_GT(client.req.enqueue_ns, 0u);
  EXPECT_GE(client.req.start_ns, client.req.enqueue_ns);
  EXPECT_GE(client.req.done_ns, client.req.start_ns);
}

TEST(Service, PastDeadlineExpiresWithoutExecuting) {
  ServiceConfig config;
  config.topology = hcluster::Topology{2, 1};
  Service svc(config);
  SyncClient client;

  client.req.completion = &client.done;
  client.req.kind = OpKind::kPut;
  client.req.key = 5;
  client.req.value_in = 123;
  client.req.deadline_ns = 1;  // long past
  ASSERT_TRUE(svc.Submit(&client.req, 0).admitted);
  hlock::LockFreeNode* node;
  while ((node = client.done.Pop()) == nullptr) {
    std::this_thread::yield();
  }
  EXPECT_EQ(client.req.status, Status::kExpired);
  EXPECT_EQ(svc.expired(), 1u);
  // The write never touched the table.
  EXPECT_EQ(client.Run(svc, OpKind::kGet, 5, 0, 0), Status::kNotFound);
}

TEST(Service, BacklogBehindSlowServiceExpiresByDeadline) {
  ServiceConfig config;
  config.topology = hcluster::Topology{2, 1};
  config.service_rate_per_worker = 20;       // 50ms per table op
  config.default_deadline_ns = 10'000'000;   // 10ms
  Service svc(config);

  // Five writes to one key land in one pump's queue almost at once.  The
  // first is served from the initial token; by the time the pacer allows the
  // third, its deadline has long passed -- it must expire at dequeue, not
  // consume a token.
  constexpr int kRequests = 5;
  hlock::LockFreeFreeList done;
  std::vector<Request> reqs(kRequests);
  for (auto& req : reqs) {
    req.completion = &done;
    req.kind = OpKind::kPut;
    req.key = 3;
    req.value_in = 1;
    ASSERT_TRUE(svc.Submit(&req, 0).admitted);
  }
  int completed = 0;
  while (completed < kRequests) {
    if (done.Pop() == nullptr) {
      std::this_thread::yield();
    } else {
      ++completed;
    }
  }
  EXPECT_EQ(svc.served() + svc.expired(), static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(svc.expired(), 1u);
  for (const auto& req : reqs) {
    EXPECT_NE(req.status, Status::kPending);
  }
}

TEST(Service, OverloadRejectsWithRetryAfterHint) {
  ServiceConfig config;
  config.topology = hcluster::Topology{2, 1};
  config.queue_bound = 2;
  config.service_rate_per_worker = 20;  // 50ms per op: the pump cannot keep up
  Service svc(config);

  hlock::LockFreeFreeList done;
  constexpr int kBurst = 50;
  std::vector<Request> reqs(kBurst);
  int admitted = 0;
  int rejected = 0;
  std::uint32_t max_hint = 0;
  for (auto& req : reqs) {
    req.completion = &done;
    req.kind = OpKind::kPut;
    req.key = 0;
    req.value_in = 9;
    const AdmitResult admit = svc.Submit(&req, 0);
    if (admit.admitted) {
      ++admitted;
    } else {
      ++rejected;
      EXPECT_GE(admit.retry_after_us, 50u);
      EXPECT_LE(admit.retry_after_us, 100000u);
      max_hint = std::max(max_hint, admit.retry_after_us);
    }
  }
  // The burst is microseconds long and the pump serves one request per 50ms:
  // it can admit at most the initial token + the queue bound + a slot or two
  // freed mid-burst.
  EXPECT_GE(rejected, kBurst / 2);
  EXPECT_GT(max_hint, 0u);
  EXPECT_EQ(svc.rejected(), static_cast<std::uint64_t>(rejected));

  svc.Drain();
  EXPECT_EQ(svc.served() + svc.expired(), static_cast<std::uint64_t>(admitted));
  // Rejected requests are still owned by us and untouched.
  for (const auto& req : reqs) {
    if (req.status == Status::kPending) {
      EXPECT_EQ(req.done_ns, 0u);
    }
  }
}

TEST(Service, SameKeyReadsCombineWithinABatch) {
  ServiceConfig config;
  config.topology = hcluster::Topology{2, 1};
  config.service_rate_per_worker = 20;  // force queueing so a batch can form
  Service svc(config);
  SyncClient writer;
  ASSERT_EQ(writer.Run(svc, OpKind::kPut, 4, 55, 0), Status::kOk);

  constexpr int kReads = 8;
  hlock::LockFreeFreeList done;
  std::vector<Request> reqs(kReads);
  for (auto& req : reqs) {
    req.completion = &done;
    req.kind = OpKind::kGet;
    req.key = 4;
    ASSERT_TRUE(svc.Submit(&req, 0).admitted);
  }
  int completed = 0;
  while (completed < kReads) {
    if (done.Pop() == nullptr) {
      std::this_thread::yield();
    } else {
      ++completed;
    }
  }
  for (const auto& req : reqs) {
    EXPECT_EQ(req.status, Status::kOk);
    EXPECT_EQ(req.value_out, 55u);
  }
  // The paced pump executes at most a couple of these against the table; the
  // rest ride the within-batch cache.
  EXPECT_GE(svc.combined_gets(), static_cast<std::uint64_t>(kReads / 2));
}

TEST(Service, ExportMetricsShapesPerShardSeries) {
  ServiceConfig config;
  config.topology = hcluster::Topology{4, 2};
  Service svc(config);
  SyncClient client;
  ASSERT_EQ(client.Run(svc, OpKind::kPut, 0, 1, 0), Status::kOk);
  ASSERT_EQ(client.Run(svc, OpKind::kPut, 1, 2, 0), Status::kOk);
  ASSERT_EQ(client.Run(svc, OpKind::kGet, 0, 0, 1), Status::kOk);
  svc.Drain();

  hmetrics::Registry registry;
  svc.ExportMetrics(&registry);
  std::uint64_t admitted = 0;
  std::uint64_t served = 0;
  std::uint64_t service_samples = 0;
  double depth = 0;
  for (std::uint32_t shard = 0; shard < svc.num_shards(); ++shard) {
    const hmetrics::Labels labels{{"shard", std::to_string(shard)}};
    admitted += registry.counter("svc.admitted", labels).value();
    served += registry.counter("svc.served", labels).value();
    service_samples += registry.histogram("svc.service_us", labels).count();
    depth += registry.gauge("svc.queue_depth", labels).value();
  }
  EXPECT_EQ(admitted, svc.admitted());
  EXPECT_EQ(served, svc.served());
  EXPECT_EQ(service_samples, svc.served());  // one sample per served request
  EXPECT_EQ(depth, 0.0);                     // drained
  // 7 series kinds x 2 shards for counters/gauge/histograms, plus the
  // service-wide svc.freelist_lock_free gauge (is the completion stack's
  // 16-byte head genuinely lock-free on this build?).
  EXPECT_EQ(registry.series_count(), 10u * svc.num_shards() + 1);
}

TEST(Service, LockProfilerSeesShardTraffic) {
  ServiceConfig config;
  config.topology = hcluster::Topology{4, 2};
  Service svc(config);
  hprof::SiteTable sites(1000.0);  // wait/hold recorded in host nanoseconds
  svc.AttachLockProfiler(&sites);
  // Coarse + reserve + chain.reader + chain.writer per replica.
  ASSERT_EQ(sites.size(), 4u * svc.num_shards());

  SyncClient client;
  ASSERT_EQ(client.Run(svc, OpKind::kPut, 2, 11, 0), Status::kOk);
  ASSERT_EQ(client.Run(svc, OpKind::kGet, 2, 0, 1), Status::kOk);  // replicates
  svc.Drain();

  std::uint64_t acquisitions = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    acquisitions += sites.site(i).acquisitions();
  }
  EXPECT_GT(acquisitions, 0u);
}

TEST(Service, ConcurrentClientsConserveEveryAdmission) {
  ServiceConfig config;
  config.topology = hcluster::Topology{4, 2};
  config.queue_bound = 8;
  Service svc(config);

  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 300;
  std::atomic<std::uint64_t> oks{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&svc, &oks, c] {
      SyncClient client;
      std::uint64_t state = 0x9E3779B97F4A7C15ull * (c + 1);
      for (int i = 0; i < kOpsPerClient; ++i) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        const std::uint64_t key = state % 32;
        const OpKind kind = (state >> 8) % 4 == 0 ? OpKind::kPut : OpKind::kGet;
        const hcluster::ClusterId origin = (state >> 16) % 2;
        const Status status = client.Run(svc, kind, key, i, origin);
        ASSERT_TRUE(status == Status::kOk || status == Status::kNotFound);
        if (status == Status::kOk) {
          oks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  svc.Drain();
  EXPECT_EQ(svc.admitted(), static_cast<std::uint64_t>(kClients * kOpsPerClient));
  EXPECT_EQ(svc.served(), svc.admitted());
  EXPECT_EQ(svc.expired(), 0u);
  EXPECT_GT(oks.load(), 0u);
}

}  // namespace
}  // namespace hsvc
