#include "src/hload/recorder.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace hload {
namespace {

TEST(LatencyRecorder, EmptyRecorder) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.sum_ns(), 0u);
  EXPECT_EQ(r.min_ns(), 0u);
  EXPECT_EQ(r.max_ns(), 0u);
  EXPECT_DOUBLE_EQ(r.mean_ns(), 0.0);
  EXPECT_EQ(r.PercentileNs(99), 0u);
}

TEST(LatencyRecorder, SmallValuesAreExact) {
  LatencyRecorder r;
  for (std::uint64_t v : {0, 1, 5, 31}) {
    r.Record(v);
  }
  EXPECT_EQ(r.count(), 4u);
  EXPECT_EQ(r.min_ns(), 0u);
  EXPECT_EQ(r.max_ns(), 31u);
  EXPECT_EQ(r.PercentileNs(0), 0u);
  EXPECT_EQ(r.PercentileNs(100), 31u);  // [0,32) buckets are exact
}

TEST(LatencyRecorder, PercentilesWithinBucketError) {
  // 1..1000000 ns uniformly: percentile p should land near p% of the range
  // within the 1/32 relative bucket error (plus the uniform-grid error).
  LatencyRecorder r;
  for (std::uint64_t v = 1; v <= 1000000; ++v) {
    r.Record(v);
  }
  EXPECT_EQ(r.count(), 1000000u);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double expected = p / 100.0 * 1000000.0;
    const double got = static_cast<double>(r.PercentileNs(p));
    EXPECT_NEAR(got, expected, expected * 0.05) << "p=" << p;
  }
  EXPECT_EQ(r.sum_ns(), 1000000ull * 1000001ull / 2);
}

TEST(LatencyRecorder, RecordAsOfBackfillsElapsedLowerBound) {
  LatencyRecorder r;
  r.RecordAsOf(1000, 5000);  // scheduled at 1000, window closed at 5000
  r.RecordAsOf(7000, 5000);  // scheduled after close: clamps to zero
  EXPECT_EQ(r.count(), 2u);
  EXPECT_EQ(r.min_ns(), 0u);
  // 4000 lands in a bucket whose representative is within 1/32.
  EXPECT_NEAR(static_cast<double>(r.max_ns()), 4000.0, 4000.0 / 16);
}

TEST(LatencyRecorder, MergeMatchesCombinedRecording) {
  LatencyRecorder a;
  LatencyRecorder b;
  LatencyRecorder all;
  for (std::uint64_t v = 1; v <= 10000; ++v) {
    ((v % 2 == 0) ? a : b).Record(v * 17 % 90001);
    all.Record(v * 17 % 90001);
  }
  LatencyRecorder merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.sum_ns(), all.sum_ns());
  EXPECT_EQ(merged.min_ns(), all.min_ns());
  EXPECT_EQ(merged.max_ns(), all.max_ns());
  for (double p : {1.0, 50.0, 99.0, 99.9}) {
    EXPECT_EQ(merged.PercentileNs(p), all.PercentileNs(p)) << "p=" << p;
  }
}

TEST(LatencyRecorder, AddToFlowsBucketsIntoHmetricsViaRecordN) {
  LatencyRecorder r;
  // Three well-separated populations: 100 @ ~50us, 10 @ ~2ms, 1 @ ~40ms.
  for (int i = 0; i < 100; ++i) {
    r.Record(50'000);
  }
  for (int i = 0; i < 10; ++i) {
    r.Record(2'000'000);
  }
  r.Record(40'000'000);

  hmetrics::LatencyHistogram h;
  r.AddTo(&h, 1000);  // ns -> us
  EXPECT_EQ(h.count(), 111u);
  // Bucket representatives divided down to us, within bucket error.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50.0, 50.0 / 16);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 2000.0, 2000.0 / 16);
  EXPECT_NEAR(static_cast<double>(h.max()), 40000.0, 40000.0 / 16);
  // The merge-of-buckets preserves totals to within the representative error.
  EXPECT_NEAR(h.mean(), r.mean_ns() / 1000.0, r.mean_ns() / 1000.0 * 0.05);
}

TEST(LatencyRecorder, HugeValuesDoNotOverflowIndexing) {
  LatencyRecorder r;
  r.Record(~std::uint64_t{0});
  r.Record(std::uint64_t{1} << 62);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_EQ(r.max_ns(), ~std::uint64_t{0});
  EXPECT_GT(r.PercentileNs(100), std::uint64_t{1} << 61);
}

TEST(LatencyRecorder, SumSaturatesAndMergePropagates) {
  constexpr std::uint64_t kCeiling = std::numeric_limits<std::uint64_t>::max();
  LatencyRecorder a;
  a.Record(kCeiling - 10);
  EXPECT_FALSE(a.sum_overflowed());
  a.Record(100);  // would wrap modulo 2^64
  EXPECT_EQ(a.sum_ns(), kCeiling);
  EXPECT_TRUE(a.sum_overflowed());
  EXPECT_EQ(a.count(), 2u);  // the count stays exact
  // Merging a saturated shard pins the destination's sum at the ceiling too.
  LatencyRecorder total;
  total.Record(5);
  total.Merge(a);
  EXPECT_TRUE(total.sum_overflowed());
  EXPECT_EQ(total.sum_ns(), kCeiling);
  EXPECT_EQ(total.count(), 3u);
}

}  // namespace
}  // namespace hload
