// End-to-end: the open-loop runner driving a real Service.  Kept small --
// these run on whatever CI core is available -- but each asserts a structural
// invariant, not a performance number.

#include "src/hload/open_loop.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace hload {
namespace {

// Every planned op must reach exactly one terminal fate, and every fate must
// have been recorded for latency (the CO-safety bookkeeping contract).
void ExpectConservation(const RunnerResult& r) {
  EXPECT_EQ(r.issued + r.pool_exhausted, r.planned);
  EXPECT_EQ(r.ok + r.notfound + r.expired + r.rejected_final + r.abandoned, r.issued);
  EXPECT_EQ(r.latency.count(), r.planned);
}

// Service-side counters must agree with the runner's view.
void ExpectServiceAgrees(const hsvc::Service& service, const RunnerResult& result) {
  EXPECT_EQ(service.served() + service.expired(),
            result.ok + result.notfound + result.expired);
  EXPECT_EQ(service.expired(), result.expired);
}

TEST(LoadRunner, UnderCapacityEverythingCompletes) {
  hsvc::ServiceConfig service_config;
  service_config.topology = hcluster::Topology{2, 1};
  hsvc::Service service(service_config);  // unpaced: capacity >> offered

  RunnerConfig config;
  config.workload.seed = 7;
  config.workload.num_clusters = 2;
  config.workload.keys_per_cluster = 32;
  config.workload.read_fraction = 0.8;
  config.rate_per_cluster = 500;
  config.ops_per_cluster = 200;
  const RunnerResult result = LoadRunner(&service, config).Run();

  ExpectConservation(result);
  EXPECT_EQ(result.planned, 400u);
  EXPECT_EQ(result.ok + result.notfound, result.planned);
  EXPECT_EQ(result.rejected_submits, 0u);
  EXPECT_EQ(result.expired, 0u);
  EXPECT_EQ(result.pool_exhausted, 0u);
  EXPECT_GT(result.window_ns, 0u);
  // Open loop at 500/s per cluster: achieved tracks offered when the service
  // keeps up.  Wide tolerance: this asserts "kept up", not a benchmark.
  EXPECT_GT(result.achieved_rps(), result.offered_rps() * 0.5);
  ExpectServiceAgrees(service, result);
}

TEST(LoadRunner, OverloadRejectsFinitelyAndKeepsAccounts) {
  hsvc::ServiceConfig service_config;
  service_config.topology = hcluster::Topology{1, 1};
  service_config.service_rate_per_worker = 200;  // hard capacity: 200 ops/s
  service_config.queue_bound = 4;
  hsvc::Service service(service_config);

  RunnerConfig config;
  config.workload.seed = 11;
  config.workload.num_clusters = 1;
  config.workload.keys_per_cluster = 16;
  config.rate_per_cluster = 2000;  // 10x overload
  config.ops_per_cluster = 600;
  config.max_retries = 2;
  const RunnerResult result = LoadRunner(&service, config).Run();

  ExpectConservation(result);
  // Admission control did its job: the door said no, repeatedly...
  EXPECT_GT(result.rejected_submits, 0u);
  EXPECT_GT(result.rejected_final + result.abandoned, 0u);
  // ...and what was admitted was served: the service never built a backlog
  // beyond its bound, so *something* completed despite 10x overload.
  EXPECT_GT(result.ok + result.notfound, 0u);
  EXPECT_EQ(service.rejected(), result.rejected_submits);
}

TEST(LoadRunner, DeadlinesPropagateToExpiry) {
  hsvc::ServiceConfig service_config;
  service_config.topology = hcluster::Topology{1, 1};
  hsvc::Service service(service_config);

  RunnerConfig config;
  config.workload.seed = 13;
  config.workload.num_clusters = 1;
  config.workload.keys_per_cluster = 8;
  config.rate_per_cluster = 2000;
  config.ops_per_cluster = 100;
  config.deadline_ns = 1;  // expires 1ns after the scheduled instant
  const RunnerResult result = LoadRunner(&service, config).Run();

  ExpectConservation(result);
  EXPECT_EQ(result.expired, result.issued);
  EXPECT_EQ(result.ok + result.notfound, 0u);
}

TEST(LoadRunner, PoolExhaustionIsCountedNotHidden) {
  hsvc::ServiceConfig service_config;
  service_config.topology = hcluster::Topology{1, 1};
  service_config.service_rate_per_worker = 50;  // 20ms per op
  hsvc::Service service(service_config);

  RunnerConfig config;
  config.workload.seed = 17;
  config.workload.num_clusters = 1;
  config.workload.keys_per_cluster = 8;
  config.rate_per_cluster = 1000;
  config.ops_per_cluster = 100;
  config.pool_size = 1;  // one outstanding request: exhausts immediately
  config.max_retries = 0;
  const RunnerResult result = LoadRunner(&service, config).Run();

  ExpectConservation(result);
  EXPECT_GT(result.pool_exhausted, 0u);
}

}  // namespace
}  // namespace hload
