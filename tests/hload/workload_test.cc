#include "src/hload/workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace hload {
namespace {

WorkloadConfig BaseConfig() {
  WorkloadConfig config;
  config.seed = 42;
  config.num_clusters = 4;
  config.keys_per_cluster = 128;
  config.read_fraction = 0.9;
  config.local_fraction = 0.8;
  return config;
}

TEST(Workload, SameSeedSamePlan) {
  const WorkloadConfig config = BaseConfig();
  const auto a = PlanOps(config, 1, 5000, 1000);
  const auto b = PlanOps(config, 1, 5000, 1000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_ns, b[i].at_ns);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
}

TEST(Workload, DifferentSeedOrClusterDiverges) {
  WorkloadConfig config = BaseConfig();
  const auto base = PlanOps(config, 1, 100, 1000);
  const auto other_cluster = PlanOps(config, 2, 100, 1000);
  config.seed = 43;
  const auto other_seed = PlanOps(config, 1, 100, 1000);
  int same_cluster = 0;
  int same_seed = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    same_cluster += base[i].key == other_cluster[i].key;
    same_seed += base[i].key == other_seed[i].key;
  }
  EXPECT_LT(same_cluster, 100);
  EXPECT_LT(same_seed, 100);
}

TEST(Workload, PoissonGapsAverageToConfiguredRate) {
  const WorkloadConfig config = BaseConfig();
  constexpr std::size_t kOps = 20000;
  constexpr double kRate = 5000;  // 200us mean gap
  const auto plan = PlanOps(config, 0, kOps, kRate);
  const double span_s = static_cast<double>(plan.back().at_ns) * 1e-9;
  const double achieved = static_cast<double>(kOps) / span_s;
  EXPECT_NEAR(achieved, kRate, kRate * 0.05);
  // Arrival times are nondecreasing (an open-loop schedule).
  for (std::size_t i = 1; i < plan.size(); ++i) {
    ASSERT_GE(plan[i].at_ns, plan[i - 1].at_ns);
  }
}

TEST(Workload, ReadWriteMixMatchesFraction) {
  const WorkloadConfig config = BaseConfig();
  const auto plan = PlanOps(config, 0, 20000, 1000);
  std::size_t writes = 0;
  for (const auto& op : plan) {
    writes += op.is_write;
  }
  const double write_fraction = static_cast<double>(writes) / plan.size();
  EXPECT_NEAR(write_fraction, 1.0 - config.read_fraction, 0.02);
}

TEST(Workload, LocalFractionControlsHomeClusterShare) {
  const WorkloadConfig config = BaseConfig();  // local_fraction = 0.8
  const std::uint32_t cluster = 2;
  const auto plan = PlanOps(config, cluster, 20000, 1000);
  std::size_t local = 0;
  for (const auto& op : plan) {
    local += op.key % config.num_clusters == cluster;
  }
  // 0.8 directly local plus 1/4 of the remaining uniform 0.2.
  const double expected = config.local_fraction +
                          (1.0 - config.local_fraction) / config.num_clusters;
  EXPECT_NEAR(static_cast<double>(local) / plan.size(), expected, 0.02);
}

TEST(Workload, KeysStayInTheConfiguredSpace) {
  const WorkloadConfig config = BaseConfig();
  const auto plan = PlanOps(config, 3, 5000, 1000);
  const std::uint64_t key_limit = config.keys_per_cluster * config.num_clusters;
  for (const auto& op : plan) {
    ASSERT_LT(op.key, key_limit);
  }
}

TEST(Workload, ZipfianSkewsUniformDoesNot) {
  WorkloadConfig config = BaseConfig();
  config.local_fraction = 1.0;  // one cluster's pool only: ranks comparable
  config.key_dist = KeyDist::kZipfian;
  const auto zipf_plan = PlanOps(config, 0, 20000, 1000);
  config.key_dist = KeyDist::kUniform;
  const auto uniform_plan = PlanOps(config, 0, 20000, 1000);

  const auto top_share = [&](const std::vector<PlannedOp>& plan) {
    std::map<std::uint64_t, std::size_t> freq;
    for (const auto& op : plan) {
      ++freq[op.key];
    }
    std::size_t top = 0;
    for (const auto& [key, count] : freq) {
      top = std::max(top, count);
    }
    return static_cast<double>(top) / plan.size();
  };
  // With 128 keys and theta=0.99, the hottest zipfian key draws >10% of
  // traffic; uniform gives each key ~0.8%.
  EXPECT_GT(top_share(zipf_plan), 0.08);
  EXPECT_LT(top_share(uniform_plan), 0.03);
}

TEST(ZipfianRanks, StaysInRangeAndHitsRankZeroMost) {
  hsim::Rng rng(7);
  ZipfianRanks zipf(1000, 0.99);
  std::vector<std::size_t> freq(1000, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t rank = zipf.Next(&rng);
    ASSERT_LT(rank, 1000u);
    ++freq[rank];
  }
  // Rank 0 must be the mode, and clearly above the uniform share.
  for (std::size_t r = 1; r < 1000; ++r) {
    EXPECT_LE(freq[r], freq[0]);
  }
  EXPECT_GT(freq[0], 50000 / 1000 * 5);
}

}  // namespace
}  // namespace hload
