// Tests for the cache-coherent machine mode (the Section 5.2 what-if).

#include <gtest/gtest.h>

#include "src/hsim/engine.h"
#include "src/hsim/locks/stress.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace hsim {
namespace {

MachineConfig Coherent() {
  MachineConfig cfg;
  cfg.cache_coherent = true;
  return cfg;
}

TEST(CoherentMachine, RepeatLoadsHitInCache) {
  Engine engine;
  Machine machine(&engine, Coherent());
  SimWord& w = machine.AllocWord(/*module=*/4, 7);  // cross-ring home
  Tick first = 0;
  Tick second = 0;
  engine.Spawn([](Processor* p, SimWord* word, Tick* f, Tick* s) -> Task<void> {
    Tick t0 = p->now();
    EXPECT_EQ(co_await p->Load(*word), 7u);
    *f = p->now() - t0;
    t0 = p->now();
    EXPECT_EQ(co_await p->Load(*word), 7u);
    *s = p->now() - t0;
  }(&machine.processor(0), &w, &first, &second));
  engine.RunUntilIdle();
  EXPECT_EQ(first, 23u);  // miss: full uncached path
  EXPECT_EQ(second, 1u);  // hit
}

TEST(CoherentMachine, WriteInvalidatesOtherSharers) {
  Engine engine;
  Machine machine(&engine, Coherent());
  SimWord& w = machine.AllocWord(0, 0);
  Tick reload = 0;
  engine.Spawn([](Machine* m, SimWord* word, Tick* out) -> Task<void> {
    Processor& a = m->processor(0);
    Processor& b = m->processor(4);
    co_await a.Load(*word);  // A caches the line
    co_await b.Store(*word, 5);  // B takes it exclusive
    const Tick t0 = a.now();
    EXPECT_EQ(co_await a.Load(*word), 5u);  // A must miss
    *out = a.now() - t0;
  }(&machine, &w, &reload));
  engine.RunUntilIdle();
  EXPECT_GT(reload, 1u);
}

TEST(CoherentMachine, ExclusiveOwnerWritesAndRmwsCheaply) {
  Engine engine;
  Machine machine(&engine, Coherent());
  SimWord& w = machine.AllocWord(4, 0);
  Tick write2 = 0;
  Tick rmw = 0;
  engine.Spawn([](Processor* p, SimWord* word, Tick* w2, Tick* r) -> Task<void> {
    co_await p->Store(*word, 1);  // take ownership (miss)
    Tick t0 = p->now();
    co_await p->Store(*word, 2);  // exclusive hit
    *w2 = p->now() - t0;
    t0 = p->now();
    EXPECT_EQ(co_await p->FetchStore(*word, 3), 2u);  // cached atomic
    *r = p->now() - t0;
  }(&machine.processor(0), &w, &write2, &rmw));
  engine.RunUntilIdle();
  EXPECT_EQ(write2, 1u);
  EXPECT_EQ(rmw, 3u);
}

TEST(CoherentMachine, ValuesStayCorrectUnderPingPong) {
  // Two processors alternate increments via CAS on a shared word: the
  // coherence machinery must only change timing, never values.
  Engine engine;
  Machine machine(&engine, Coherent());
  SimWord& w = machine.AllocWord(0, 0);
  int done = 0;
  for (ProcId id : {0u, 5u}) {
    engine.Spawn([](Processor* p, SimWord* word, int* counter) -> Task<void> {
      for (int i = 0; i < 200; ++i) {
        while (true) {
          const std::uint64_t cur = co_await p->Load(*word);
          if (co_await p->CompareSwap(*word, cur, cur + 1)) {
            break;
          }
        }
      }
      ++*counter;
    }(&machine.processor(id), &w, &done));
  }
  engine.RunUntilIdle();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(w.value, 400u);
}

TEST(CoherentMachine, LocksStillMutuallyExclude) {
  LockStressParams params;
  params.kind = LockKind::kMcsH2;
  params.processors = 8;
  params.machine = Coherent();
  params.duration = UsToTicks(3000);
  const LockStressResult r = RunLockStress(params);
  EXPECT_GT(r.window_ops, 0u);
  // (mutual exclusion itself is asserted by the lock property sweep; here we
  // check the coherent run completes and is far faster per op than uncached)
  LockStressParams uncached = params;
  uncached.machine = MachineConfig{};
  const LockStressResult r2 = RunLockStress(uncached);
  EXPECT_LT(r.little_response_us(), r2.little_response_us());
}

TEST(CoherentMachine, SpinBeatsQueueAtLowContentionAndLosesAtHigh) {
  // Section 5.2's trade-off, as a regression test.
  auto run = [](LockKind kind, unsigned p) {
    LockStressParams params;
    params.kind = kind;
    params.processors = p;
    params.machine = Coherent();
    params.duration = UsToTicks(8000);
    return RunLockStress(params).little_response_us();
  };
  EXPECT_LT(run(LockKind::kSpin35us, 2), run(LockKind::kMcs, 2));
  EXPECT_GT(run(LockKind::kSpin35us, 16), run(LockKind::kMcs, 16));
}

}  // namespace
}  // namespace hsim
