// Tests for FaultPlan's whole-node partition windows: every leg to or from a
// partitioned node id is dropped while the send instant lies inside a window,
// healing ends windows early, and the partition path neither consumes PRNG
// state nor disturbs the probabilistic/forced fault machinery outside the
// window.

#include <gtest/gtest.h>

#include "src/hsim/fault.h"

namespace hsim {
namespace {

FaultPlan::Decision Send(FaultPlan& plan, ProcId src, ProcId dst, Tick now,
                         FaultLeg leg = FaultLeg::kRequest) {
  return plan.Decide(leg, src, dst, /*op=*/0, now);
}

TEST(FaultPartitionTest, DropsAllLegsToAndFromNodeDuringWindow) {
  FaultPlan plan(FaultConfig{});
  plan.PartitionNode(/*node=*/3, /*from=*/100, /*until=*/200);

  // Before the window: both directions pass.
  EXPECT_FALSE(Send(plan, 3, 1, 99).drop);
  EXPECT_FALSE(Send(plan, 1, 3, 99).drop);
  // Inside [from, until): dropped as source, as destination, on both legs.
  EXPECT_TRUE(Send(plan, 3, 1, 100).drop);
  EXPECT_TRUE(Send(plan, 1, 3, 150).drop);
  EXPECT_TRUE(Send(plan, 1, 3, 199, FaultLeg::kReply).drop);
  // Legs not touching the node are unaffected.
  EXPECT_FALSE(Send(plan, 1, 2, 150).drop);
  // At `until` the window is over (half-open interval).
  EXPECT_FALSE(Send(plan, 3, 1, 200).drop);

  const FaultPlan::Counters& c = plan.counters();
  EXPECT_EQ(c.requests_partitioned, 2u);
  EXPECT_EQ(c.replies_partitioned, 1u);
  EXPECT_EQ(c.partitioned(), 3u);
  // Partition drops are included in the generic drop counters so transport
  // reconciliation (seen == delivered + dropped) stays exact.
  EXPECT_EQ(c.requests_dropped, 2u);
  EXPECT_EQ(c.replies_dropped, 1u);
}

TEST(FaultPartitionTest, NodePartitionedQueriesWindows) {
  FaultPlan plan(FaultConfig{});
  plan.PartitionNode(7, 50, 60);
  plan.PartitionNode(7, 80, FaultPlan::kNeverHeals);

  EXPECT_FALSE(plan.NodePartitioned(7, 49));
  EXPECT_TRUE(plan.NodePartitioned(7, 50));
  EXPECT_FALSE(plan.NodePartitioned(7, 60));
  EXPECT_TRUE(plan.NodePartitioned(7, 1'000'000));
  EXPECT_FALSE(plan.NodePartitioned(6, 55));
}

TEST(FaultPartitionTest, HealEndsActiveAndFutureWindows) {
  FaultPlan plan(FaultConfig{});
  plan.PartitionNode(2, 100, FaultPlan::kNeverHeals);  // active at heal time
  plan.PartitionNode(2, 500, 600);                     // entirely in the future

  EXPECT_TRUE(plan.NodePartitioned(2, 150));
  plan.HealNode(2, /*now=*/150);
  EXPECT_FALSE(plan.NodePartitioned(2, 150));
  EXPECT_FALSE(plan.NodePartitioned(2, 550));  // future window cancelled too
  EXPECT_FALSE(Send(plan, 2, 0, 550).drop);

  // Healing an unknown node is a no-op.
  plan.HealNode(9, 0);
}

TEST(FaultPartitionTest, PartitionConsumesNoPrngStateOutsideWindow) {
  // Two plans with the same seed and drop probability; one also has a
  // partition window.  Outside the window the probabilistic decisions must be
  // identical: the partition path takes no PRNG draw.
  FaultConfig cfg;
  cfg.drop_request = 0.5;
  cfg.seed = 42;
  FaultPlan base(cfg);
  FaultPlan part(cfg);
  part.PartitionNode(5, 1000, 2000);

  for (Tick now = 0; now < 64; ++now) {
    EXPECT_EQ(Send(base, 0, 1, now).drop, Send(part, 0, 1, now).drop) << now;
  }
}

TEST(FaultPartitionTest, PartitionWinsOverForceKnobs) {
  // A forced duplicate does not fire for a partitioned send: the message
  // never reaches the wire at all.  The force budget is preserved for the
  // first post-heal send.
  FaultConfig cfg;
  cfg.force_dup_requests = 1;
  FaultPlan plan(cfg);
  plan.PartitionNode(1, 0, 100);

  const FaultPlan::Decision during = Send(plan, 0, 1, 50);
  EXPECT_TRUE(during.drop);
  EXPECT_FALSE(during.duplicate);
  const FaultPlan::Decision after = Send(plan, 0, 1, 100);
  EXPECT_FALSE(after.drop);
  EXPECT_TRUE(after.duplicate);
}

TEST(FaultPartitionTest, DefaultNowKeepsLegacyCallersOutsideWindows) {
  // Legacy four-argument Decide calls resolve to now = 0: a window starting
  // at tick 0 catches them, one starting later does not.
  FaultPlan plan(FaultConfig{});
  plan.PartitionNode(4, 10, 20);
  EXPECT_FALSE(plan.Decide(FaultLeg::kRequest, 0, 4, 0).drop);
}

}  // namespace
}  // namespace hsim
