// Tests for the simulated lock algorithms: mutual exclusion, FIFO fairness of
// the Distributed Locks, exact Figure 4 instruction counts, queue repair, and
// reserve-bit semantics.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/hsim/engine.h"
#include "src/hsim/locks/mcs_lock.h"
#include "src/hsim/locks/numa_lock.h"
#include "src/hsim/locks/reserve_bit.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/locks/spin_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {
namespace {

struct CsState {
  int inside = 0;
  int max_inside = 0;
  std::uint64_t entries = 0;
  std::vector<ProcId> order;
};

Task<void> CriticalLoop(Processor* p, SimLock* lock, CsState* cs, int iterations, Tick hold) {
  for (int i = 0; i < iterations; ++i) {
    co_await lock->Acquire(*p);
    ++cs->inside;
    cs->max_inside = std::max(cs->max_inside, cs->inside);
    ++cs->entries;
    cs->order.push_back(p->id());
    co_await p->Compute(hold);
    --cs->inside;
    co_await lock->Release(*p);
    co_await p->Compute(5);
  }
}

class SimLockProperty : public ::testing::TestWithParam<LockKind> {};

TEST_P(SimLockProperty, MutualExclusionUnderFullContention) {
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  auto lock = MakeSimLock(&machine, GetParam(), 0);
  CsState cs;
  const int kIters = 40;
  for (ProcId p = 0; p < machine.num_processors(); ++p) {
    engine.Spawn(CriticalLoop(&machine.processor(p), lock.get(), &cs, kIters, /*hold=*/13));
  }
  engine.RunUntilIdle();
  EXPECT_EQ(cs.max_inside, 1) << "two processors were inside the critical section";
  EXPECT_EQ(cs.entries, static_cast<std::uint64_t>(kIters) * machine.num_processors());
}

TEST_P(SimLockProperty, MutualExclusionWithZeroHoldTime) {
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  auto lock = MakeSimLock(&machine, GetParam(), 0);
  CsState cs;
  for (ProcId p = 0; p < 8; ++p) {
    engine.Spawn(CriticalLoop(&machine.processor(p), lock.get(), &cs, 60, /*hold=*/0));
  }
  engine.RunUntilIdle();
  EXPECT_EQ(cs.max_inside, 1);
  EXPECT_EQ(cs.entries, 8u * 60u);
}

INSTANTIATE_TEST_SUITE_P(AllLockKinds, SimLockProperty,
                         ::testing::Values(LockKind::kSpin35us, LockKind::kSpin2ms, LockKind::kMcs,
                                           LockKind::kMcsH1, LockKind::kMcsH2, LockKind::kCna,
                                           LockKind::kHmcsT, LockKind::kFissile),
                         [](const ::testing::TestParamInfo<LockKind>& info) {
                           std::string n = LockKindName(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

Task<void> AcquireOnce(Engine* engine, Processor* p, SimLock* lock, Tick at,
                       std::vector<ProcId>* order, Tick hold) {
  co_await engine->WaitUntil(at);
  co_await lock->Acquire(*p);
  order->push_back(p->id());
  co_await p->Compute(hold);
  co_await lock->Release(*p);
}

class McsVariantTest : public ::testing::TestWithParam<McsVariant> {};

TEST_P(McsVariantTest, GrantsInArrivalOrder) {
  // Distributed Locks are fair: processors are queued in order of arrival.
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  SimMcsLock lock(&machine, /*home=*/0, GetParam());
  std::vector<ProcId> order;
  // Stagger arrivals far enough apart that enqueue order is deterministic,
  // and hold the lock long enough that all processors are queued before the
  // first release (a release concurrent with an arrival can legitimately let
  // the arrival "usurp" the queue in the swap-only release).
  for (ProcId p = 0; p < 16; ++p) {
    engine.Spawn(AcquireOnce(&engine, &machine.processor(p), &lock, /*at=*/p * 40, &order,
                             /*hold=*/2000));
  }
  engine.RunUntilIdle();
  ASSERT_EQ(order.size(), 16u);
  for (ProcId p = 0; p < 16; ++p) {
    EXPECT_EQ(order[p], p) << "MCS lock granted out of arrival order";
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, McsVariantTest,
                         ::testing::Values(McsVariant::kOriginal, McsVariant::kH1,
                                           McsVariant::kH2),
                         [](const ::testing::TestParamInfo<McsVariant>& info) {
                           switch (info.param) {
                             case McsVariant::kOriginal:
                               return std::string("original");
                             case McsVariant::kH1:
                               return std::string("h1");
                             case McsVariant::kH2:
                               return std::string("h2");
                           }
                           return std::string("?");
                         });

// --- Figure 4: exact uncontended instruction counts -------------------------

struct Fig4Row {
  std::uint64_t atomic;
  std::uint64_t mem;
  std::uint64_t reg;
  std::uint64_t br;
};

Fig4Row CountUncontendedPair(LockKind kind) {
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  auto lock = MakeSimLock(&machine, kind, 0);
  Processor& p = machine.processor(0);
  // Warm-up pass (H1/H2 pre-initialization is part of lock construction, but
  // a warm-up also catches any accidental first-use cost).
  engine.Spawn([](Processor* proc, SimLock* l) -> Task<void> {
    co_await l->Acquire(*proc);
    co_await l->Release(*proc);
  }(&p, lock.get()));
  engine.RunUntilIdle();
  OpStats before = p.stats();
  engine.Spawn([](Processor* proc, SimLock* l) -> Task<void> {
    co_await l->Acquire(*proc);
    co_await l->Release(*proc);
  }(&p, lock.get()));
  engine.RunUntilIdle();
  OpStats d = p.stats() - before;
  return Fig4Row{d.atomic_ops, d.mem_accesses(), d.reg_instrs, d.branches};
}

TEST(Figure4Counts, McsMatchesPaper) {
  Fig4Row r = CountUncontendedPair(LockKind::kMcs);
  EXPECT_EQ(r.atomic, 2u);
  EXPECT_EQ(r.mem, 2u);
  EXPECT_EQ(r.reg, 3u);
  EXPECT_EQ(r.br, 5u);
}

TEST(Figure4Counts, H1McsMatchesPaper) {
  Fig4Row r = CountUncontendedPair(LockKind::kMcsH1);
  EXPECT_EQ(r.atomic, 2u);
  EXPECT_EQ(r.mem, 1u);
  EXPECT_EQ(r.reg, 3u);
  EXPECT_EQ(r.br, 5u);
}

TEST(Figure4Counts, H2McsMatchesPaper) {
  Fig4Row r = CountUncontendedPair(LockKind::kMcsH2);
  EXPECT_EQ(r.atomic, 2u);
  EXPECT_EQ(r.mem, 0u);
  EXPECT_EQ(r.reg, 3u);
  EXPECT_EQ(r.br, 4u);
}

TEST(Figure4Counts, SpinMatchesPaper) {
  Fig4Row r = CountUncontendedPair(LockKind::kSpin35us);
  EXPECT_EQ(r.atomic, 2u);
  EXPECT_EQ(r.mem, 0u);
  EXPECT_EQ(r.reg, 1u);
  EXPECT_EQ(r.br, 3u);
}

// --- modification-specific behaviour ----------------------------------------

TEST(McsRepair, H2AlwaysRepairsWhenSuccessorExists) {
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  SimMcsLock lock(&machine, /*home=*/0, McsVariant::kH2);
  std::vector<ProcId> order;
  for (ProcId p = 0; p < 4; ++p) {
    engine.Spawn(AcquireOnce(&engine, &machine.processor(p), &lock, p * 10, &order, 500));
  }
  engine.RunUntilIdle();
  // Three releases happen with a successor queued; each must repair.
  EXPECT_EQ(lock.repairs(), 3u);
  ASSERT_EQ(order.size(), 4u);
}

TEST(McsRepair, H1RepairsOnlyOnRaceWindow) {
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  SimMcsLock lock(&machine, /*home=*/0, McsVariant::kH1);
  std::vector<ProcId> order;
  // Arrivals spaced beyond the hold time: no contention, no repairs.
  for (ProcId p = 0; p < 4; ++p) {
    engine.Spawn(AcquireOnce(&engine, &machine.processor(p), &lock, p * 2000, &order, 100));
  }
  engine.RunUntilIdle();
  EXPECT_EQ(lock.repairs(), 0u);
}

TEST(McsRepair, UncontendedReacquireWorksAfterRepair) {
  // The queue must be intact after a repair: run many contention rounds and
  // then verify a lone acquire/release still works.
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  SimMcsLock lock(&machine, /*home=*/0, McsVariant::kH2);
  CsState cs;
  for (ProcId p = 0; p < 6; ++p) {
    engine.Spawn(CriticalLoop(&machine.processor(p), &lock, &cs, 30, 7));
  }
  engine.RunUntilIdle();
  EXPECT_EQ(cs.max_inside, 1);
  bool done = false;
  engine.Spawn([](Processor* p, SimLock* l, bool* flag) -> Task<void> {
    co_await l->Acquire(*p);
    co_await l->Release(*p);
    *flag = true;
  }(&machine.processor(9), &lock, &done));
  engine.RunUntilIdle();
  EXPECT_TRUE(done);
}

// --- reserve bits ------------------------------------------------------------

TEST(ReserveBit, ExclusiveBlocksReadersAndExclusive) {
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  SimWord& r = machine.AllocWord(0);
  engine.Spawn([](Processor* p, SimWord* word) -> Task<void> {
    EXPECT_TRUE(co_await SimReserve::TrySetExclusive(*p, *word));
    EXPECT_FALSE(co_await SimReserve::TrySetExclusive(*p, *word));
    EXPECT_FALSE(co_await SimReserve::TryAddReader(*p, *word));
    co_await SimReserve::ClearExclusive(*p, *word);
    EXPECT_TRUE(co_await SimReserve::TryAddReader(*p, *word));
    EXPECT_TRUE(co_await SimReserve::TryAddReader(*p, *word));
    EXPECT_FALSE(co_await SimReserve::TrySetExclusive(*p, *word));
    co_await SimReserve::RemoveReader(*p, *word);
    co_await SimReserve::RemoveReader(*p, *word);
    EXPECT_TRUE(co_await SimReserve::TrySetExclusive(*p, *word));
  }(&machine.processor(0), &r));
  engine.RunUntilIdle();
}

TEST(ReserveBit, SpinUntilFreeObservesClear) {
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  // The word starts exclusively reserved; the holder clears it after 1000
  // cycles of work.
  SimWord& r = machine.AllocWord(0, SimReserve::kExclusive);
  Tick waiter_done = 0;
  engine.Spawn([](Processor* p, SimWord* word) -> Task<void> {
    co_await p->Compute(1000);
    co_await SimReserve::ClearExclusive(*p, *word);
  }(&machine.processor(0), &r));
  engine.Spawn([](Processor* p, SimWord* word, Tick* done) -> Task<void> {
    co_await SimReserve::SpinUntilFree(*p, *word, UsToTicks(35));
    *done = p->now();
  }(&machine.processor(5), &r, &waiter_done));
  engine.RunUntilIdle();
  EXPECT_GE(waiter_done, 1000u);
  EXPECT_LT(waiter_done, 1000u + UsToTicks(80));  // bounded by backoff cap
}

}  // namespace
}  // namespace hsim
