// Unit tests for the discrete-event engine: time ordering, determinism, and
// run-until semantics.

#include "src/hsim/engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/hsim/task.h"

namespace hsim {
namespace {

Task<void> RecordAt(Engine* engine, std::vector<std::pair<Tick, int>>* log, Tick at, int id) {
  co_await engine->WaitUntil(at);
  log->emplace_back(engine->now(), id);
}

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<std::pair<Tick, int>> log;
  engine.Spawn(RecordAt(&engine, &log, 30, 3));
  engine.Spawn(RecordAt(&engine, &log, 10, 1));
  engine.Spawn(RecordAt(&engine, &log, 20, 2));
  engine.RunUntilIdle();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<Tick, int>{10, 1}));
  EXPECT_EQ(log[1], (std::pair<Tick, int>{20, 2}));
  EXPECT_EQ(log[2], (std::pair<Tick, int>{30, 3}));
}

TEST(EngineTest, TiesResolveInSpawnOrder) {
  Engine engine;
  std::vector<std::pair<Tick, int>> log;
  for (int i = 0; i < 5; ++i) {
    engine.Spawn(RecordAt(&engine, &log, 7, i));
  }
  engine.RunUntilIdle();
  ASSERT_EQ(log.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(log[i].second, i);
  }
}

Task<void> Ticker(Engine* engine, int* count, int n, Tick step) {
  for (int i = 0; i < n; ++i) {
    co_await engine->Delay(step);
    ++*count;
  }
}

TEST(EngineTest, RunUntilStopsAtBoundary) {
  Engine engine;
  int count = 0;
  engine.Spawn(Ticker(&engine, &count, 10, 5));
  EXPECT_FALSE(engine.RunUntil(24));  // events remain
  EXPECT_EQ(count, 4);                // ticks at 5,10,15,20
  EXPECT_EQ(engine.now(), 24u);
  engine.RunUntilIdle();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(engine.now(), 50u);
}

TEST(EngineTest, PastDeadlinesDoNotSuspend) {
  Engine engine;
  int count = 0;
  engine.Spawn(Ticker(&engine, &count, 3, 0));  // Delay(0) is ready immediately
  engine.RunUntilIdle();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(engine.now(), 0u);
}

TEST(EngineTest, LiveTaskAccounting) {
  Engine engine;
  int count = 0;
  engine.Spawn(Ticker(&engine, &count, 2, 10));
  engine.Spawn(Ticker(&engine, &count, 2, 10));
  EXPECT_EQ(engine.live_tasks(), 2u);
  engine.RunUntilIdle();
  EXPECT_EQ(engine.live_tasks(), 0u);
}

TEST(EngineTest, DeterministicReplay) {
  auto run = [] {
    Engine engine;
    std::vector<std::pair<Tick, int>> log;
    for (int i = 0; i < 8; ++i) {
      engine.Spawn(RecordAt(&engine, &log, (i * 37) % 11, i));
    }
    engine.RunUntilIdle();
    return log;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hsim
