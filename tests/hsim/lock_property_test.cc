// Parameterized property sweep over the simulated locks: for every
// (algorithm, processor count, hold time) combination, verify the three
// invariants any lock must satisfy under the deterministic machine model:
//
//   1. mutual exclusion (never two holders),
//   2. work conservation (critical-section time fits inside elapsed time),
//   3. completion (every requested acquisition is eventually granted).

#include <cstdint>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "src/hsim/engine.h"
#include "src/hsim/locks/mcs_lock.h"
#include "src/hsim/locks/numa_lock.h"
#include "src/hsim/locks/sim_lock.h"
#include "src/hsim/locks/spin_lock.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {
namespace {

using Param = std::tuple<LockKind, std::uint32_t /*procs*/, Tick /*hold*/>;

class SimLockSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SimLockSweep, Invariants) {
  const auto [kind, procs, hold] = GetParam();
  Engine engine;
  Machine machine(&engine, MachineConfig{});
  auto lock = MakeSimLock(&machine, kind, 0);

  struct State {
    int inside = 0;
    bool overlap = false;
    std::uint64_t acquisitions = 0;
    Tick cs_time = 0;
  } state;

  constexpr int kIters = 25;
  for (std::uint32_t p = 0; p < procs; ++p) {
    engine.Spawn([](Processor* proc, SimLock* l, State* s, Tick h) -> Task<void> {
      for (int i = 0; i < kIters; ++i) {
        co_await l->Acquire(*proc);
        if (++s->inside != 1) {
          s->overlap = true;
        }
        ++s->acquisitions;
        s->cs_time += h;
        co_await proc->Compute(h);
        --s->inside;
        co_await l->Release(*proc);
        co_await proc->Compute(11);
      }
    }(&machine.processor(p), lock.get(), &state, hold));
  }
  const Tick elapsed = engine.RunUntilIdle();

  EXPECT_FALSE(state.overlap) << "mutual exclusion violated";
  EXPECT_EQ(state.acquisitions, static_cast<std::uint64_t>(procs) * kIters)
      << "an acquisition was lost";
  EXPECT_GE(elapsed, state.cs_time) << "more critical-section time than wall time";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimLockSweep,
    ::testing::Combine(::testing::Values(LockKind::kSpin35us, LockKind::kSpin2ms, LockKind::kMcs,
                                         LockKind::kMcsH1, LockKind::kMcsH2, LockKind::kCna,
                                         LockKind::kHmcsT, LockKind::kFissile),
                       ::testing::Values(1u, 3u, 7u, 16u),
                       ::testing::Values(Tick(0), Tick(120))),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = LockKindName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_p" + std::to_string(std::get<1>(info.param)) + "_h" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace hsim
