// Handoff attribution under contention (the claim behind the fig5 handoff
// panel): on the 4-station HECTOR model at p=16, the NUMA-aware locks (CNA,
// HMCS-T) must grant a materially higher share of handoffs to a waiter on
// the releasing owner's station than the FIFO MCS family, whose grant order
// is arrival order and therefore mixes stations freely (expected share with
// 4 stations of 4: about (4-1)/(16-1) = 0.2).
//
// The shares come from hprof's exact enqueue-time cluster attribution, not
// from re-deriving clusters out of grant order: the stress harness attaches
// a LockSiteStats and the lock cores record each acquirer's backend cluster.

#include <cstdint>

#include <gtest/gtest.h>

#include "src/hprof/lock_site.h"
#include "src/hsim/locks/stress.h"
#include "src/hsim/types.h"

namespace hsim {
namespace {

struct HandoffMix {
  double same_processor = 0;
  double same_cluster = 0;
  double cross_cluster = 0;
  std::uint64_t total = 0;
  std::uint64_t enqueues = 0;  // waiter-side cluster captures
};

HandoffMix RunContended(LockKind kind) {
  hprof::LockSiteStats site(LockKindName(kind), /*procs_per_cluster=*/4);
  LockStressParams params;
  params.kind = kind;
  params.processors = 16;
  params.hold = UsToTicks(25);
  params.warmup = UsToTicks(200);
  params.duration = UsToTicks(10000);
  params.site = &site;
  RunLockStress(params);

  HandoffMix mix;
  mix.total = site.handoffs(hprof::Handoff::kSameProcessor) +
              site.handoffs(hprof::Handoff::kSameCluster) +
              site.handoffs(hprof::Handoff::kCrossCluster);
  if (mix.total > 0) {
    const double denom = static_cast<double>(mix.total);
    mix.same_processor = static_cast<double>(site.handoffs(hprof::Handoff::kSameProcessor)) / denom;
    mix.same_cluster = static_cast<double>(site.handoffs(hprof::Handoff::kSameCluster)) / denom;
    mix.cross_cluster = static_cast<double>(site.handoffs(hprof::Handoff::kCrossCluster)) / denom;
  }
  for (const auto& [cluster, share] : site.by_cluster()) {
    mix.enqueues += share.enqueues;
  }
  return mix;
}

TEST(HandoffShare, FifoMcsMixesStationsFreely) {
  for (LockKind kind : {LockKind::kMcs, LockKind::kMcsH1, LockKind::kMcsH2}) {
    const HandoffMix mix = RunContended(kind);
    ASSERT_GT(mix.total, 200u) << LockKindName(kind);
    // Arrival-order grants: roughly 3 of 15 other processors share the
    // releasing owner's station.
    EXPECT_GT(mix.same_cluster, 0.05) << LockKindName(kind);
    EXPECT_LT(mix.same_cluster, 0.5) << LockKindName(kind);
    // Saturated FIFO queue: the releasing owner re-enqueues behind everyone
    // else and cannot be the next owner.
    EXPECT_LT(mix.same_processor, 0.05) << LockKindName(kind);
  }
}

TEST(HandoffShare, CnaBatchesSameStationWaiters) {
  const HandoffMix cna = RunContended(LockKind::kCna);
  const HandoffMix h1 = RunContended(LockKind::kMcsH1);
  const HandoffMix h2 = RunContended(LockKind::kMcsH2);
  ASSERT_GT(cna.total, 200u);
  EXPECT_GT(cna.same_cluster, 0.8);
  // "Materially higher": at least twice the FIFO share, not a rounding win.
  EXPECT_GT(cna.same_cluster, 2 * h1.same_cluster);
  EXPECT_GT(cna.same_cluster, 2 * h2.same_cluster);
  // The starvation bound still lets remote waiters through.
  EXPECT_GT(cna.cross_cluster, 0.0);
}

TEST(HandoffShare, HmcsTBatchesSameStationWaiters) {
  const HandoffMix hmcs = RunContended(LockKind::kHmcsT);
  const HandoffMix h1 = RunContended(LockKind::kMcsH1);
  const HandoffMix h2 = RunContended(LockKind::kMcsH2);
  ASSERT_GT(hmcs.total, 200u);
  EXPECT_GT(hmcs.same_cluster, 0.8);
  EXPECT_GT(hmcs.same_cluster, 2 * h1.same_cluster);
  EXPECT_GT(hmcs.same_cluster, 2 * h2.same_cluster);
  EXPECT_GT(hmcs.cross_cluster, 0.0);
}

TEST(HandoffShare, EnqueueTimeClusterCaptureCountsContendedWaits) {
  // Every contended CNA acquisition passes through EnterQueue(cluster), so
  // the enqueue-time cluster mix must be populated — this is the signal the
  // secondary queue reorders, recorded before any reordering happens.
  const HandoffMix cna = RunContended(LockKind::kCna);
  EXPECT_GT(cna.enqueues, 200u);
}

}  // namespace
}  // namespace hsim
