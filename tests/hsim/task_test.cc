// Unit tests for the coroutine Task type.

#include "src/hsim/task.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "src/hsim/engine.h"

namespace hsim {
namespace {

Task<int> ReturnValue(int v) { co_return v; }

Task<int> AddNested(int a, int b) {
  int x = co_await ReturnValue(a);
  int y = co_await ReturnValue(b);
  co_return x + y;
}

Task<void> SetFlag(bool* flag) {
  *flag = true;
  co_return;
}

Task<int> Throws() {
  throw std::runtime_error("boom");
  co_return 0;  // unreachable
}

Task<void> Driver(int* out) { *out = co_await AddNested(2, 3); }

TEST(TaskTest, NestedTasksPropagateValues) {
  Engine engine;
  int result = 0;
  engine.Spawn(Driver(&result));
  engine.RunUntilIdle();
  EXPECT_EQ(result, 5);
}

TEST(TaskTest, SpawnRunsEagerlyUntilFirstSuspend) {
  Engine engine;
  bool flag = false;
  engine.Spawn(SetFlag(&flag));
  // SetFlag never awaits an engine awaitable, so it finishes inline.
  EXPECT_TRUE(flag);
  EXPECT_EQ(engine.live_tasks(), 0u);
}

Task<void> CatchesException(bool* caught) {
  try {
    co_await Throws();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(TaskTest, ExceptionsPropagateToAwaiter) {
  Engine engine;
  bool caught = false;
  engine.Spawn(CatchesException(&caught));
  engine.RunUntilIdle();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, UnawaitedTaskIsDestroyedWithoutRunning) {
  bool flag = false;
  {
    Task<void> t = SetFlag(&flag);
    EXPECT_TRUE(t.valid());
    // Dropped without being awaited.
  }
  EXPECT_FALSE(flag);
}

Task<void> DelayedSet(Engine* engine, bool* flag, Tick at) {
  co_await engine->WaitUntil(at);
  *flag = true;
}

TEST(TaskTest, MoveAssignReleasesOldFrame) {
  Engine engine;
  bool a = false;
  bool b = false;
  Task<void> t = DelayedSet(&engine, &a, 10);
  t = DelayedSet(&engine, &b, 10);  // first frame destroyed, never runs
  engine.Spawn(std::move(t));
  engine.RunUntilIdle();
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
}

}  // namespace
}  // namespace hsim
