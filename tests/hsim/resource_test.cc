// Unit tests for reservation-based FIFO resources.

#include "src/hsim/resource.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/hsim/engine.h"
#include "src/hsim/task.h"

namespace hsim {
namespace {

Task<void> UseAt(Engine* engine, Resource* res, Tick at, Tick hold, std::vector<Tick>* done) {
  co_await engine->WaitUntil(at);
  co_await res->Use(hold);
  done->push_back(engine->now());
}

TEST(ResourceTest, UncontendedUseTakesHoldTime) {
  Engine engine;
  Resource res(&engine, "r");
  std::vector<Tick> done;
  engine.Spawn(UseAt(&engine, &res, 5, 10, &done));
  engine.RunUntilIdle();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 15u);
  EXPECT_EQ(res.total_wait(), 0u);
  EXPECT_EQ(res.total_busy(), 10u);
}

TEST(ResourceTest, ContendingUsersAreServedFifo) {
  Engine engine;
  Resource res(&engine, "r");
  std::vector<Tick> done;
  // Three transactions arrive at t=0 (spawn order breaks the tie).
  engine.Spawn(UseAt(&engine, &res, 0, 10, &done));
  engine.Spawn(UseAt(&engine, &res, 0, 10, &done));
  engine.Spawn(UseAt(&engine, &res, 0, 10, &done));
  engine.RunUntilIdle();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 10u);
  EXPECT_EQ(done[1], 20u);
  EXPECT_EQ(done[2], 30u);
  EXPECT_EQ(res.total_wait(), 0u + 10u + 20u);
}

TEST(ResourceTest, LateArrivalQueuesBehindBusyServer) {
  Engine engine;
  Resource res(&engine, "r");
  std::vector<Tick> done;
  engine.Spawn(UseAt(&engine, &res, 0, 100, &done));
  engine.Spawn(UseAt(&engine, &res, 50, 10, &done));
  engine.RunUntilIdle();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100u);
  EXPECT_EQ(done[1], 110u);  // waited 50, served 10
  EXPECT_EQ(res.total_wait(), 50u);
}

TEST(ResourceTest, IdleGapsDoNotAccumulate) {
  Engine engine;
  Resource res(&engine, "r");
  std::vector<Tick> done;
  engine.Spawn(UseAt(&engine, &res, 0, 10, &done));
  engine.Spawn(UseAt(&engine, &res, 100, 10, &done));
  engine.RunUntilIdle();
  EXPECT_EQ(done[1], 110u);  // server was idle from 10 to 100
}

Task<void> OverlappedUser(Engine* engine, Resource* res, Tick visible, Tick hold, Tick* resumed) {
  co_await res->UseOverlapped(visible, hold);
  *resumed = engine->now();
}

TEST(ResourceTest, OverlappedUseResumesEarlyButHoldsServer) {
  Engine engine;
  Resource res(&engine, "r");
  Tick resumed = 0;
  std::vector<Tick> done;
  engine.Spawn(OverlappedUser(&engine, &res, 10, 20, &resumed));
  engine.Spawn(UseAt(&engine, &res, 0, 10, &done));
  engine.RunUntilIdle();
  EXPECT_EQ(resumed, 10u);  // caller resumes after the visible part
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 30u);  // but the server stays busy through tick 20
}

TEST(ResourceTest, StatsReset) {
  Engine engine;
  Resource res(&engine, "r");
  std::vector<Tick> done;
  engine.Spawn(UseAt(&engine, &res, 0, 10, &done));
  engine.Spawn(UseAt(&engine, &res, 0, 10, &done));
  engine.RunUntilIdle();
  EXPECT_GT(res.transactions(), 0u);
  res.ResetStats();
  EXPECT_EQ(res.transactions(), 0u);
  EXPECT_EQ(res.total_busy(), 0u);
  EXPECT_EQ(res.total_wait(), 0u);
}

}  // namespace
}  // namespace hsim
