// Tests for the Figure 5 stress harness and the Section 4.1.1 latency
// relationships the paper reports.

#include "src/hsim/locks/stress.h"

#include <gtest/gtest.h>

namespace hsim {
namespace {

TEST(UncontendedLatency, PaperRelationshipsHold) {
  const double mcs = UncontendedPairLatencyUs(LockKind::kMcs);
  const double h1 = UncontendedPairLatencyUs(LockKind::kMcsH1);
  const double h2 = UncontendedPairLatencyUs(LockKind::kMcsH2);
  const double spin = UncontendedPairLatencyUs(LockKind::kSpin35us);
  // Each modification strictly improves the uncontended pair.
  EXPECT_LT(h1, mcs);
  EXPECT_LT(h2, h1);
  // H2 lands close to the spin lock (paper: 3.69 vs 3.65 us).
  EXPECT_LT(h2, spin * 1.15);
  // The combined improvement is substantial (paper: 32%).
  EXPECT_GT((mcs - h2) / mcs, 0.15);
}

TEST(LockStress, SingleProcessorIsUncontended) {
  LockStressParams params;
  params.kind = LockKind::kMcsH2;
  params.processors = 1;
  params.duration = UsToTicks(4000);
  const LockStressResult r = RunLockStress(params);
  EXPECT_GT(r.window_ops, 100u);
  EXPECT_EQ(r.mcs_repairs, 0u);
  // Acquire latency is a few microseconds at most.
  EXPECT_LT(r.acquire_latency.mean_us(), 5.0);
}

TEST(LockStress, ResponseGrowsWithProcessors) {
  auto run = [](std::uint32_t p) {
    LockStressParams params;
    params.kind = LockKind::kMcs;
    params.processors = p;
    params.hold = UsToTicks(25);
    params.duration = UsToTicks(15000);
    return RunLockStress(params).little_response_us();
  };
  const double w2 = run(2);
  const double w8 = run(8);
  // FIFO queueing: roughly linear in p (paper Figure 5b).
  EXPECT_GT(w8, w2 * 2.5);
}

TEST(LockStress, H1DoesNotDegradeTheContendedCase) {
  // Paper: "the first modification ... does not degrade performance in the
  // case of contention".
  auto run = [](LockKind kind) {
    LockStressParams params;
    params.kind = kind;
    params.processors = 8;
    params.hold = 0;
    params.duration = UsToTicks(10000);
    return RunLockStress(params).little_response_us();
  };
  EXPECT_LT(run(LockKind::kMcsH1), run(LockKind::kMcs) * 1.25);
}

TEST(LockStress, H2PaysARepairPerContendedRelease) {
  LockStressParams params;
  params.kind = LockKind::kMcsH2;
  params.processors = 8;
  params.hold = 0;
  params.duration = UsToTicks(10000);
  const LockStressResult r = RunLockStress(params);
  // Under saturation, nearly every release has a successor and must repair.
  EXPECT_GT(static_cast<double>(r.mcs_repairs),
            0.5 * static_cast<double>(r.acquisitions));
}

TEST(LockStress, SpinWithSmallCapMeltsDownAtHighContention) {
  auto run = [](LockKind kind) {
    LockStressParams params;
    params.kind = kind;
    params.processors = 16;
    params.hold = 0;
    params.duration = UsToTicks(10000);
    return RunLockStress(params);
  };
  const LockStressResult spin = run(LockKind::kSpin35us);
  const LockStressResult mcs = run(LockKind::kMcs);
  EXPECT_GT(spin.little_response_us(), mcs.little_response_us() * 2.0);
  // The meltdown mechanism: the lock's memory module saturates.
  EXPECT_GT(spin.lock_module_utilization, 0.9);
  EXPECT_GT(spin.spin_retries, spin.acquisitions);
}

TEST(LockStress, Spin2msIsCompetitiveOnAverage) {
  // Paper: with a 2 ms cap the spin lock is competitive with the Distributed
  // Locks (memory contention becomes negligible).
  auto run = [](LockKind kind) {
    LockStressParams params;
    params.kind = kind;
    params.processors = 16;
    params.hold = 0;
    params.duration = UsToTicks(10000);
    return RunLockStress(params);
  };
  const LockStressResult spin = run(LockKind::kSpin2ms);
  const LockStressResult h2 = run(LockKind::kMcsH2);
  EXPECT_LT(spin.little_response_us(), h2.little_response_us() * 1.5);
  EXPECT_LT(spin.lock_module_utilization, 0.95);
}

TEST(LockStress, Deterministic) {
  LockStressParams params;
  params.kind = LockKind::kSpin35us;
  params.processors = 6;
  params.duration = UsToTicks(5000);
  const LockStressResult a = RunLockStress(params);
  const LockStressResult b = RunLockStress(params);
  EXPECT_EQ(a.window_ops, b.window_ops);
  EXPECT_EQ(a.acquire_latency.samples(), b.acquire_latency.samples());
}

}  // namespace
}  // namespace hsim
