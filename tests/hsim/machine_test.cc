// Tests pinning down the HECTOR machine model: the paper's uncontended access
// latencies (10 / 19 / 23 cycles), atomic-swap cost and overlap, value
// ordering at memory modules, and second-order contention behaviour.

#include "src/hsim/machine.h"

#include <gtest/gtest.h>

#include "src/hsim/engine.h"
#include "src/hsim/task.h"
#include "src/hsim/types.h"

namespace hsim {
namespace {

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : machine_(&engine_, MachineConfig{}) {}

  Engine engine_;
  Machine machine_;
};

Task<void> OneLoad(Processor* p, SimWord* w, Tick* latency) {
  Tick start = p->now();
  co_await p->Load(*w);
  *latency = p->now() - start;
}

TEST_F(MachineTest, LocalLoadTakesTenCycles) {
  SimWord& w = machine_.AllocWord(/*module=*/0);
  Tick latency = 0;
  engine_.Spawn(OneLoad(&machine_.processor(0), &w, &latency));
  engine_.RunUntilIdle();
  EXPECT_EQ(latency, 10u);
}

TEST_F(MachineTest, OnStationLoadTakesNineteenCycles) {
  // Processor 0 and module 1 share station 0.
  SimWord& w = machine_.AllocWord(/*module=*/1);
  Tick latency = 0;
  engine_.Spawn(OneLoad(&machine_.processor(0), &w, &latency));
  engine_.RunUntilIdle();
  EXPECT_EQ(latency, 19u);
}

TEST_F(MachineTest, CrossRingLoadTakesTwentyThreeCycles) {
  // Module 4 is on station 1.
  SimWord& w = machine_.AllocWord(/*module=*/4);
  Tick latency = 0;
  engine_.Spawn(OneLoad(&machine_.processor(0), &w, &latency));
  engine_.RunUntilIdle();
  EXPECT_EQ(latency, 23u);
}

Task<void> OneSwap(Processor* p, SimWord* w, Tick* latency, std::uint64_t* old) {
  Tick start = p->now();
  *old = co_await p->FetchStore(*w, 42);
  *latency = p->now() - start;
}

TEST_F(MachineTest, AtomicSwapVisibleLatencyEqualsLoadLatency) {
  // The MC88100 proceeds as soon as the fetch half completes.
  SimWord& w = machine_.AllocWord(/*module=*/4, 7);
  Tick latency = 0;
  std::uint64_t old = 0;
  engine_.Spawn(OneSwap(&machine_.processor(0), &w, &latency, &old));
  engine_.RunUntilIdle();
  EXPECT_EQ(latency, 23u);
  EXPECT_EQ(old, 7u);
  EXPECT_EQ(w.value, 42u);
  // ... but the module was locked for two accesses plus the one-way trip the
  // store half makes back across the interconnect (2*10 + 13).
  EXPECT_EQ(machine_.memory(4).total_busy(), 33u);
}

Task<void> SwapThenLoadLocal(Processor* p, SimWord* remote, SimWord* local, Tick* gap) {
  co_await p->FetchStore(*remote, 1);
  Tick after_swap = p->now();
  co_await p->Load(*local);
  *gap = p->now() - after_swap;
}

TEST_F(MachineTest, SwapStoreHalfOverlapsWithLocalWork) {
  // After a swap to module 1, a local load on module 0 proceeds immediately:
  // the store half only occupies the remote module.
  SimWord& remote = machine_.AllocWord(/*module=*/1);
  SimWord& local = machine_.AllocWord(/*module=*/0);
  Tick gap = 0;
  engine_.Spawn(SwapThenLoadLocal(&machine_.processor(0), &remote, &local, &gap));
  engine_.RunUntilIdle();
  EXPECT_EQ(gap, 10u);
}

Task<void> StoreValue(Processor* p, SimWord* w, std::uint64_t v) { co_await p->Store(*w, v); }

Task<void> LoadAfter(Engine* engine, Processor* p, SimWord* w, Tick at, std::uint64_t* out) {
  co_await engine->WaitUntil(at);
  *out = co_await p->Load(*w);
}

TEST_F(MachineTest, StoresBecomeVisibleInModuleOrder) {
  SimWord& w = machine_.AllocWord(/*module=*/0, 0);
  std::uint64_t seen_early = 99;
  std::uint64_t seen_late = 99;
  engine_.Spawn(StoreValue(&machine_.processor(4), &w, 5));  // remote store, arrives ~t=9
  // A local load by processor 0 issued at t=0 reserves the module first and
  // must see the old value.
  engine_.Spawn(LoadAfter(&engine_, &machine_.processor(0), &w, 0, &seen_early));
  // A load issued well after the store completes must see the new value.
  engine_.Spawn(LoadAfter(&engine_, &machine_.processor(0), &w, 100, &seen_late));
  engine_.RunUntilIdle();
  EXPECT_EQ(seen_early, 0u);
  EXPECT_EQ(seen_late, 5u);
}

Task<void> SwapLoop(Processor* p, SimWord* w, int n) {
  for (int i = 0; i < n; ++i) {
    co_await p->FetchStore(*w, p->id());
  }
}

Task<void> TimedLoadAfter(Engine* engine, Processor* p, SimWord* w, Tick at, Tick* latency) {
  co_await engine->WaitUntil(at);
  Tick start = p->now();
  co_await p->Load(*w);
  *latency = p->now() - start;
}

TEST_F(MachineTest, ContendedLocalLoadIsDelayedByRemoteTraffic) {
  SimWord& hot = machine_.AllocWord(/*module=*/0);
  SimWord& other = machine_.AllocWord(/*module=*/0);
  for (ProcId p = 4; p < 12; ++p) {
    engine_.Spawn(SwapLoop(&machine_.processor(p), &hot, 50));
  }
  Tick latency = 0;
  engine_.Spawn(TimedLoadAfter(&engine_, &machine_.processor(0), &other, 100, &latency));
  engine_.RunUntilIdle();
  // The module is saturated by remote swaps; the local load waits in queue.
  EXPECT_GT(latency, 10u);
}

TEST_F(MachineTest, OpStatsAreCharged) {
  Processor& p = machine_.processor(0);
  SimWord& w = machine_.AllocWord(0);
  OpStats before = p.stats();
  engine_.Spawn([](Processor* proc, SimWord* word) -> Task<void> {
    co_await proc->Load(*word);
    co_await proc->Store(*word, 1);
    co_await proc->FetchStore(*word, 2);
    co_await proc->Exec(3, 2);
  }(&p, &w));
  engine_.RunUntilIdle();
  OpStats delta = p.stats() - before;
  EXPECT_EQ(delta.mem_loads, 1u);
  EXPECT_EQ(delta.mem_stores, 1u);
  EXPECT_EQ(delta.atomic_ops, 1u);
  EXPECT_EQ(delta.reg_instrs, 3u);
  EXPECT_EQ(delta.branches, 2u);
}

TEST_F(MachineTest, CompareSwapSemantics) {
  SimWord& w = machine_.AllocWord(0, 10);
  engine_.Spawn([](Processor* p, SimWord* word) -> Task<void> {
    bool ok1 = co_await p->CompareSwap(*word, 10, 20);
    EXPECT_TRUE(ok1);
    bool ok2 = co_await p->CompareSwap(*word, 10, 30);
    EXPECT_FALSE(ok2);
  }(&machine_.processor(0), &w));
  engine_.RunUntilIdle();
  EXPECT_EQ(w.value, 20u);
}

TEST_F(MachineTest, FetchAddSemantics) {
  SimWord& w = machine_.AllocWord(0, 5);
  engine_.Spawn([](Processor* p, SimWord* word) -> Task<void> {
    std::uint64_t old = co_await p->FetchAdd(*word, 3);
    EXPECT_EQ(old, 5u);
  }(&machine_.processor(0), &w));
  engine_.RunUntilIdle();
  EXPECT_EQ(w.value, 8u);
}

TEST_F(MachineTest, StationAssignment) {
  EXPECT_EQ(machine_.station_of(0), 0u);
  EXPECT_EQ(machine_.station_of(3), 0u);
  EXPECT_EQ(machine_.station_of(4), 1u);
  EXPECT_EQ(machine_.station_of(15), 3u);
  EXPECT_EQ(machine_.num_processors(), 16u);
}

}  // namespace
}  // namespace hsim
