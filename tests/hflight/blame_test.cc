// Tests for the hwhy blame analysis: the golden text report over canned
// flight + lockprof documents, the 1% reconciliation gate, schema rejection,
// the JSON renderer, and the built-in self-test (CI's smoke entry).

#include "src/hflight/blame.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/hmetrics/json.h"

namespace hflight {
namespace {

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "cannot open " << path;
  if (f == nullptr) {
    return {};
  }
  std::string out;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

hmetrics::JsonValue ParseFile(const std::string& name) {
  const std::string text = ReadFile(std::string(HFLIGHT_TESTDATA_DIR) + "/" + name);
  hmetrics::JsonValue doc;
  std::string error;
  EXPECT_TRUE(hmetrics::JsonParser::Parse(text, &doc, &error)) << name << ": " << error;
  return doc;
}

TEST(BlameReportTest, GoldenTextReport) {
  BlameReport report;
  std::string error;
  ASSERT_TRUE(report.AddFlight(ParseFile("flight.json"), &error)) << error;
  ASSERT_TRUE(report.AddLockProf(ParseFile("lockprof.json"), &error)) << error;
  ASSERT_TRUE(report.Analyze(&error)) << error;

  // Regenerate with:
  //   build/tools/hwhy tests/hflight/testdata/flight.json
  //     tests/hflight/testdata/lockprof.json --top=5
  //     | head -c -1 > tests/hflight/testdata/golden_report.txt
  // (one command line; hwhy prints one extra trailing newline after the
  // report, which head -c -1 strips).
  const std::string golden =
      ReadFile(std::string(HFLIGHT_TESTDATA_DIR) + "/golden_report.txt");
  EXPECT_EQ(report.RenderText(5), golden);
}

TEST(BlameReportTest, AnalysisAggregatesAcrossRecords) {
  BlameReport report;
  std::string error;
  ASSERT_TRUE(report.AddFlight(ParseFile("flight.json"), &error)) << error;
  ASSERT_TRUE(report.Analyze(&error)) << error;

  EXPECT_EQ(report.tail_records(), 2u);
  EXPECT_EQ(report.tail_total_ticks(), 2400u);
  EXPECT_EQ(report.phase_ticks(Phase::kLockWait), 350u);
  EXPECT_DOUBLE_EQ(report.phase_share(Phase::kLockWait), 350.0 / 2400.0);
  // Cross ticks 150 of 350 tail lock_wait.
  EXPECT_DOUBLE_EQ(report.cross_cluster_share(), 150.0 / 350.0);
  EXPECT_EQ(report.max_reconcile_error(), 0.0);
  ASSERT_EQ(report.sites().size(), 2u);
  EXPECT_EQ(report.sites()[0].name, "svc.table");  // 250 > 100 ticks
  EXPECT_FALSE(report.sites()[0].have_lockprof);   // no lockprof doc loaded
  // Causal link survives the parse.
  EXPECT_EQ(report.tail()[1].parent, 11u);
}

TEST(BlameReportTest, LockProfMergeEnrichesSites) {
  BlameReport report;
  std::string error;
  // Order-independence: lockprof first.
  ASSERT_TRUE(report.AddLockProf(ParseFile("lockprof.json"), &error)) << error;
  ASSERT_TRUE(report.AddFlight(ParseFile("flight.json"), &error)) << error;
  ASSERT_TRUE(report.Analyze(&error)) << error;
  ASSERT_EQ(report.sites().size(), 2u);
  const SiteBlame& top = report.sites()[0];
  EXPECT_TRUE(top.have_lockprof);
  EXPECT_EQ(top.acquisitions, 5000u);
  EXPECT_EQ(top.contended, 1200u);
  EXPECT_DOUBLE_EQ(top.remote_handoff_pct, 30.0);  // 1500 of 5000 handoffs
  EXPECT_FALSE(report.sites()[1].have_lockprof);
}

TEST(BlameReportTest, ReconciliationFailureIsLoud) {
  // A record whose ledger sums to half its claimed total: corrupt input must
  // fail, not silently skew the blame shares.
  const std::string bad =
      "{\"schema\":\"hurricane-flight/1\",\"ticks_per_us\":1,\"promoted\":["
      "{\"id\":99,\"cluster\":0,\"fate\":\"ok\",\"total\":1000,"
      "\"lock_wait_cross\":0,\"phases\":{\"admit\":0,\"inbox\":0,\"batch\":0,"
      "\"lock_wait\":500,\"hold\":0,\"rpc\":0,\"other\":0,\"reply\":0}}]}";
  hmetrics::JsonValue doc;
  std::string error;
  ASSERT_TRUE(hmetrics::JsonParser::Parse(bad, &doc, &error)) << error;
  BlameReport report;
  ASSERT_TRUE(report.AddFlight(doc, &error)) << error;
  EXPECT_FALSE(report.Analyze(&error));
  EXPECT_NE(error.find("99"), std::string::npos) << error;
  EXPECT_NE(error.find("reconciliation"), std::string::npos) << error;
}

TEST(BlameReportTest, RejectsWrongSchemaAndEmptyInput) {
  hmetrics::JsonValue doc;
  std::string error;
  ASSERT_TRUE(hmetrics::JsonParser::Parse("{\"schema\":\"something-else/1\"}", &doc, &error));
  BlameReport report;
  EXPECT_FALSE(report.AddFlight(doc, &error));
  // Analyze without any flight doc fails too.
  EXPECT_FALSE(report.Analyze(&error));
  EXPECT_NE(error.find("no flight document"), std::string::npos);
}

TEST(BlameReportTest, RenderJsonIsAValidReportDoc) {
  BlameReport report;
  std::string error;
  ASSERT_TRUE(report.AddFlight(ParseFile("flight.json"), &error)) << error;
  ASSERT_TRUE(report.Analyze(&error)) << error;
  hmetrics::JsonValue doc;
  ASSERT_TRUE(hmetrics::JsonParser::Parse(report.RenderJson(), &doc, &error)) << error;
  EXPECT_EQ(doc["schema"].string_value, kBlameSchema);
  EXPECT_EQ(doc["tail_records"].number, 2.0);
  ASSERT_TRUE(doc.Has("phase_share"));
  double share_sum = 0;
  for (int p = 0; p < kNumPhases; ++p) {
    share_sum += doc["phase_share"][PhaseName(static_cast<Phase>(p))].number;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  ASSERT_EQ(doc["sites"].array.size(), 2u);
}

TEST(BlameReportTest, SelfTestPasses) {
  std::string error;
  EXPECT_TRUE(BlameReport::SelfTest(&error)) << error;
}

}  // namespace
}  // namespace hflight
