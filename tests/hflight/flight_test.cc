// Tests for the flight recorder: ring overwrite semantics, the Finalize
// ledger identity (phases sum exactly to total), tail-sampler determinism,
// the ScopedLedger / hprof WaitObserver charge path, span export, and the
// hurricane-flight/1 round trip.

#include "src/hflight/flight.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/hmetrics/json.h"
#include "src/hmetrics/trace.h"
#include "src/hprof/lock_site.h"

namespace hflight {
namespace {

std::uint64_t PhaseSum(const FlightRecord& rec) {
  std::uint64_t sum = 0;
  for (int i = 0; i < kNumPhases; ++i) {
    sum += rec.phase[i];
  }
  return sum;
}

TEST(FlightRecordTest, FinalizeFullPipelineSumsToTotal) {
  FlightRecord rec;
  rec.Reset(1, 0, 1000, 0);
  rec.enqueue = 1100;  // admit 100
  rec.start = 1400;    // inbox 300
  rec.exec = 1500;     // batch 100
  rec.AddLockWait(7, 250, true);
  rec.AddHold(100);
  rec.AddRpc(50, 2);
  rec.done = 2500;  // exec span 1000: lock_wait 250, hold 100, rpc 50, other 600
  rec.end = 2600;   // reply 100
  rec.Finalize();
  EXPECT_EQ(rec.total(), 1600u);
  EXPECT_EQ(PhaseSum(rec), rec.total());
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kAdmit)], 100u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kInbox)], 300u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kBatch)], 100u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kLockWait)], 250u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kHold)], 100u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kRpc)], 50u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kOther)], 600u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kReply)], 100u);
  EXPECT_EQ(rec.rpc_retransmits, 2u);
}

TEST(FlightRecordTest, FinalizeUnsetStampsCollapse) {
  // A rejected request never entered a queue: only begin and end are real.
  FlightRecord rec;
  rec.Reset(2, 1, 500, 0);
  rec.end = 900;
  rec.Finalize();
  EXPECT_EQ(PhaseSum(rec), 400u);
  // All unset stamps collapse to begin, so everything lands in other/reply.
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kAdmit)], 0u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kInbox)], 0u);
}

TEST(FlightRecordTest, FinalizeCapsOversizedAccumulators) {
  // Accumulators larger than the exec..done span (double-counted waits,
  // clock skew) must cap, never push the sum past total().
  FlightRecord rec;
  rec.Reset(3, 0, 0, 0);
  rec.enqueue = 10;
  rec.start = 20;
  rec.exec = 30;
  rec.AddLockWait(1, 1000000, false);
  rec.AddHold(1000000);
  rec.AddRpc(1000000, 0);
  rec.done = 130;
  rec.end = 140;
  rec.Finalize();
  EXPECT_EQ(PhaseSum(rec), rec.total());
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kLockWait)], 100u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kHold)], 0u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kRpc)], 0u);
  EXPECT_EQ(rec.phase[static_cast<int>(Phase::kOther)], 0u);
}

TEST(FlightRecordTest, FinalizeOutOfOrderStampsClampMonotonic) {
  FlightRecord rec;
  rec.Reset(4, 0, 100, 0);
  rec.enqueue = 90;  // before begin: clamps up
  rec.start = 300;
  rec.exec = 250;  // before start: clamps up to start
  rec.done = 999999;  // past end: clamps down
  rec.end = 400;
  rec.Finalize();
  EXPECT_EQ(PhaseSum(rec), rec.total());
}

TEST(FlightRecordTest, SiteWaitsMergeAndFoldOnOverflow) {
  FlightRecord rec;
  rec.Reset(5, 0, 0, 0);
  rec.AddLockWait(10, 5, false);
  rec.AddLockWait(10, 7, true);  // merges into the existing slot
  EXPECT_EQ(rec.num_site_waits, 1u);
  EXPECT_EQ(rec.site_waits[0].ticks, 12u);
  EXPECT_EQ(rec.site_waits[0].cross_ticks, 7u);
  rec.AddLockWait(11, 1, false);
  rec.AddLockWait(12, 1, false);
  rec.AddLockWait(13, 1, false);
  EXPECT_EQ(rec.num_site_waits, 4u);
  // A fifth distinct site folds into the last slot; the ticks survive.
  rec.AddLockWait(14, 9, true);
  EXPECT_EQ(rec.num_site_waits, 4u);
  EXPECT_EQ(rec.site_waits[3].ticks, 10u);
  EXPECT_EQ(rec.lock_wait, 5u + 7u + 1u + 1u + 1u + 9u);
}

TEST(FlightRecorderTest, OpenNeverFailsAndOverwritesOldest) {
  FlightConfig cfg;
  cfg.clusters = 1;
  cfg.ring_size = 8;
  FlightRecorder fr(cfg);
  // Fill the ring with open records, then lap it: every Open must succeed,
  // and laps overwrite still-open records (counted).
  std::vector<FlightRecord*> first_lap;
  for (int i = 0; i < 8; ++i) {
    FlightRecord* rec = fr.Open(0, 100 + i);
    ASSERT_NE(rec, nullptr);
    first_lap.push_back(rec);
  }
  EXPECT_EQ(fr.overwritten_open(), 0u);
  for (int i = 0; i < 8; ++i) {
    FlightRecord* rec = fr.Open(0, 200 + i);
    ASSERT_NE(rec, nullptr);
    // The ring reuses the same slots in order.
    EXPECT_EQ(rec, first_lap[i]);
  }
  EXPECT_EQ(fr.opened(), 16u);
  EXPECT_EQ(fr.overwritten_open(), 8u);
}

TEST(FlightRecorderTest, CloseFeedsFatesAndHistograms) {
  FlightConfig cfg;
  cfg.clusters = 2;
  cfg.ring_size = 16;
  FlightRecorder fr(cfg);
  for (int i = 0; i < 10; ++i) {
    FlightRecord* rec = fr.Open(i % 2, 0);
    fr.Close(rec, i < 7 ? Fate::kOk : Fate::kExpired, 100 + i);
  }
  EXPECT_EQ(fr.closed(), 10u);
  EXPECT_EQ(fr.fate_count(Fate::kOk), 7u);
  EXPECT_EQ(fr.fate_count(Fate::kExpired), 3u);
  EXPECT_EQ(fr.total_hist().count(), 10u);
  EXPECT_EQ(fr.total_hist().min(), 100u);
  EXPECT_EQ(fr.total_hist().max(), 109u);
}

// Drives `n` closes with a bimodal latency mix and returns the promoted ids.
std::vector<std::uint64_t> RunSampler(std::uint64_t seed, int n) {
  FlightConfig cfg;
  cfg.clusters = 1;
  cfg.ring_size = 16;
  cfg.tail_quantile = 0.9;
  cfg.warmup_closes = 16;
  cfg.reservoir_size = 64;
  cfg.seed = seed;
  FlightRecorder fr(cfg);
  for (int i = 0; i < n; ++i) {
    FlightRecord* rec = fr.Open(0, 0);
    fr.Close(rec, Fate::kOk, i % 5 == 4 ? 1000 : 100);
  }
  std::vector<std::uint64_t> ids;
  for (const FlightRecord& rec : fr.promoted()) {
    ids.push_back(rec.id);
  }
  return ids;
}

TEST(FlightRecorderTest, TailSamplerIsDeterministicAndSelective) {
  const std::vector<std::uint64_t> a = RunSampler(42, 500);
  const std::vector<std::uint64_t> b = RunSampler(42, 500);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  // Only the slow cohort (every 5th close, ids 5,10,15,... after warmup) may
  // be promoted: the q90 threshold sits inside the 20% slow mode.
  for (std::uint64_t id : a) {
    EXPECT_EQ(id % 5, 0u) << "fast record " << id << " was promoted";
  }
}

TEST(FlightRecorderTest, PromotedCapIsCountedNotSilent) {
  FlightConfig cfg;
  cfg.clusters = 1;
  cfg.ring_size = 16;
  cfg.tail_quantile = 0.0;  // promote everything past warmup
  cfg.warmup_closes = 1;
  cfg.max_promoted = 4;
  FlightRecorder fr(cfg);
  for (int i = 0; i < 64; ++i) {
    fr.Close(fr.Open(0, 0), Fate::kOk, 100);
  }
  EXPECT_EQ(fr.promoted().size(), 4u);
  // Every close cleared the (min) threshold, so kept + dropped = closed.
  EXPECT_EQ(fr.promoted().size() + fr.promoted_dropped(), fr.closed());
}

TEST(ScopedLedgerTest, ChargesObservedWaitsToArmedRecord) {
  FlightConfig cfg;
  FlightRecorder fr(cfg);
  FlightRecord* rec = fr.Open(0, 0);
  hprof::LockSiteStats site("svc.table", 4);
  {
    ScopedLedger ledger(&fr, rec);
    // First acquire: no previous owner, reported same-processor.
    site.RecordAcquire(/*owner=*/0, /*wait=*/40, /*contended=*/true, /*cluster=*/0);
    site.RecordRelease(/*hold=*/15);
    // Second acquire from another cluster: cross-cluster handoff.
    site.RecordAcquire(/*owner=*/5, /*wait=*/60, /*contended=*/true, /*cluster=*/1);
    site.RecordRelease(/*hold=*/25);
  }
  // Disarmed: further events must not charge the record.
  site.RecordAcquire(0, 999, true, 0);
  site.RecordRelease(999);

  EXPECT_EQ(rec->lock_wait, 100u);
  EXPECT_EQ(rec->lock_wait_cross, 60u);
  EXPECT_EQ(rec->hold, 40u);
  ASSERT_EQ(rec->num_site_waits, 1u);
  EXPECT_EQ(rec->site_waits[0].ticks, 100u);
  EXPECT_EQ(rec->site_waits[0].cross_ticks, 60u);
  EXPECT_EQ(fr.SiteName(rec->site_waits[0].site), "svc.table");
}

TEST(ScopedLedgerTest, NullArgumentsAreNoops) {
  FlightConfig cfg;
  FlightRecorder fr(cfg);
  hprof::LockSiteStats site("x");
  {
    ScopedLedger ledger(nullptr, nullptr);
    site.RecordAcquire(0, 10, false);
  }
  {
    ScopedLedger ledger(&fr, nullptr);
    site.RecordAcquire(0, 10, false);
  }
  SUCCEED();  // no crash, nothing armed
}

TEST(ScopedLedgerTest, NestingRestoresOuterRecord) {
  FlightConfig cfg;
  FlightRecorder fr(cfg);
  FlightRecord* outer = fr.Open(0, 0);
  FlightRecord* inner = fr.Open(0, 0);
  hprof::LockSiteStats site("nested");
  {
    ScopedLedger a(&fr, outer);
    {
      ScopedLedger b(&fr, inner);
      site.RecordAcquire(0, 5, false);
    }
    site.RecordAcquire(0, 7, false);
  }
  EXPECT_EQ(inner->lock_wait, 5u);
  EXPECT_EQ(outer->lock_wait, 7u);
}

TEST(FlightRecorderTest, ExportSpansEmitsCausalChain) {
  FlightConfig cfg;
  cfg.tail_quantile = 0.0;
  cfg.warmup_closes = 1;
  FlightRecorder fr(cfg);
  FlightRecord* parent = fr.Open(0, 100);
  parent->enqueue = 110;
  parent->start = 120;
  parent->exec = 130;
  parent->done = 190;
  fr.Close(parent, Fate::kOk, 200);
  FlightRecord* child = fr.Open(0, 140, parent->id);
  fr.Close(child, Fate::kOk, 600);

  hmetrics::TraceSession trace(hmetrics::kTraceFlight);
  fr.ExportSpans(&trace);
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("flight/total"), std::string::npos);
  EXPECT_NE(json.find("flight/inbox"), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);

  // Category disabled: nothing is exported.
  hmetrics::TraceSession off(hmetrics::kTraceLocks);
  fr.ExportSpans(&off);
  EXPECT_EQ(off.event_count(), 0u);
}

TEST(FlightRecorderTest, WriteJsonRoundTrips) {
  FlightConfig cfg;
  cfg.clusters = 2;
  cfg.ticks_per_us = 16.0;
  cfg.tail_quantile = 0.5;
  cfg.warmup_closes = 4;
  FlightRecorder fr(cfg);
  const std::uint32_t site = fr.InternSite("svc.table");
  for (int i = 0; i < 20; ++i) {
    FlightRecord* rec = fr.Open(i % 2, 0);
    if (i % 4 == 3) {
      rec->exec = 10;
      rec->AddLockWait(site, 50, i % 8 == 7);
      rec->done = 900;
    }
    fr.Close(rec, Fate::kOk, i % 4 == 3 ? 1000 : 100);
  }

  hmetrics::JsonValue doc;
  std::string error;
  ASSERT_TRUE(hmetrics::JsonParser::Parse(fr.ToJson(), &doc, &error)) << error;
  EXPECT_EQ(doc["schema"].string_value, kFlightSchema);
  EXPECT_EQ(doc["closed"].number, 20.0);
  EXPECT_EQ(doc["clusters"].number, 2.0);
  ASSERT_TRUE(doc.Has("phases"));
  ASSERT_TRUE(doc["phases"].Has("lock_wait"));
  ASSERT_TRUE(doc.Has("promoted"));
  EXPECT_FALSE(doc["promoted"].array.empty());
  ASSERT_TRUE(doc.Has("sites"));
  ASSERT_EQ(doc["sites"].array.size(), 1u);
  EXPECT_EQ(doc["sites"].array[0]["name"].string_value, "svc.table");
  // Every promoted record must carry a ledger that sums to its total.
  for (const hmetrics::JsonValue& rec : doc["promoted"].array) {
    double sum = 0;
    for (int p = 0; p < kNumPhases; ++p) {
      sum += rec["phases"][PhaseName(static_cast<Phase>(p))].number;
    }
    EXPECT_EQ(sum, rec["total"].number);
  }
}

}  // namespace
}  // namespace hflight
