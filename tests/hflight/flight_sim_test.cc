// hflight under the simulator: the recorder must be a pure host-side
// observer (attaching it changes no simulated memory traffic -- the hsim
// locality counters are bit-identical attached vs detached), and the kernel
// RPC path must produce causally linked caller/handler record pairs whose
// ledgers reconcile.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/hflight/flight.h"
#include "src/hkernel/kernel.h"
#include "src/hsim/engine.h"
#include "src/hsim/machine.h"
#include "src/hsim/opstats.h"

namespace hflight {
namespace {

struct Rig {
  hsim::Engine engine;
  hsim::Machine machine;
  hkernel::KernelSystem system;
  bool stop = false;

  Rig()
      : machine(&engine, hsim::MachineConfig{}),
        system(&machine, [] {
          hkernel::KernelConfig c;
          c.cluster_size = 4;
          return c;
        }()) {}
};

// Sums the per-processor locality counters over the whole machine.
hsim::OpStats MachineStats(hsim::Machine* machine) {
  hsim::OpStats total;
  for (hsim::ProcId p = 0; p < machine->num_processors(); ++p) {
    total += machine->processor(p).stats();
  }
  return total;
}

// Runs a fixed cross-cluster RPC workload: `calls` NullRpcs from processor 0
// to cluster 1, everything else idling.
void RunWorkload(Rig* rig, int calls) {
  for (hsim::ProcId p = 1; p < rig->machine.num_processors(); ++p) {
    rig->engine.Spawn(rig->system.IdleLoop(rig->machine.processor(p), &rig->stop));
  }
  rig->engine.Spawn([](Rig* r, int n) -> hsim::Task<void> {
    for (int i = 0; i < n; ++i) {
      co_await r->system.NullRpc(r->machine.processor(0), 1);
    }
    r->stop = true;
  }(rig, calls));
  rig->engine.RunUntilIdle();
}

TEST(FlightSimTest, AttachedRecorderIsAPureObserver) {
  constexpr int kCalls = 12;

  Rig detached;
  RunWorkload(&detached, kCalls);
  const hsim::OpStats base = MachineStats(&detached.machine);

  Rig attached;
  FlightConfig cfg;
  cfg.clusters = 2;
  cfg.ring_size = 64;
  cfg.ticks_per_us = 16.0;
  FlightRecorder recorder(cfg);
  attached.system.AttachFlightRecorder(&recorder);
  RunWorkload(&attached, kCalls);
  const hsim::OpStats traced = MachineStats(&attached.machine);

  // Zero-ring-crossing acceptance: recording lives entirely on the host, so
  // the simulated interconnect sees the exact same traffic.
  EXPECT_EQ(traced.loc_local, base.loc_local);
  EXPECT_EQ(traced.loc_station, base.loc_station);
  EXPECT_EQ(traced.loc_ring, base.loc_ring);
  EXPECT_GT(recorder.closed(), 0u);
}

TEST(FlightSimTest, RpcLegsProduceCausallyLinkedRecords) {
  // One call: the handler record closes first (setting the promotion
  // threshold to its own total), then the caller record -- whose total spans
  // the handler's -- clears it.  Both legs are promoted deterministically.
  Rig rig;
  FlightConfig cfg;
  cfg.clusters = 2;
  cfg.ring_size = 64;
  cfg.ticks_per_us = 16.0;
  cfg.tail_quantile = 0.0;
  cfg.warmup_closes = 1;
  FlightRecorder recorder(cfg);
  rig.system.AttachFlightRecorder(&recorder);
  RunWorkload(&rig, 1);

  EXPECT_EQ(recorder.closed(), 2u);
  EXPECT_EQ(recorder.fate_count(Fate::kOk), 2u);
  const std::vector<FlightRecord> promoted = recorder.promoted();
  ASSERT_EQ(promoted.size(), 2u);
  const FlightRecord& child = promoted[0];   // handler leg closed first
  const FlightRecord& root = promoted[1];    // caller leg
  for (const FlightRecord& rec : promoted) {
    std::uint64_t sum = 0;
    for (int p = 0; p < kNumPhases; ++p) {
      sum += rec.phase[p];
    }
    EXPECT_EQ(sum, rec.total()) << "record " << rec.id << " fails reconciliation";
  }
  // Caller leg: a root on cluster 0 whose whole span is rpc time.
  EXPECT_EQ(root.parent, 0u);
  EXPECT_EQ(root.origin_cluster, 0u);
  EXPECT_GT(root.phase[static_cast<int>(Phase::kRpc)], 0u);
  EXPECT_EQ(root.phase[static_cast<int>(Phase::kLockWait)], 0u);
  // Handler leg: linked to the caller, nested inside its span, with the
  // wire + delivery-queue delay showing up as inbox.
  EXPECT_EQ(child.parent, root.id);
  EXPECT_EQ(child.origin_cluster, 1u);
  EXPECT_GE(child.begin, root.begin);
  EXPECT_LE(child.end, root.end);
  EXPECT_GT(child.phase[static_cast<int>(Phase::kInbox)], 0u);
}

TEST(FlightSimTest, EveryCallYieldsBothLegs) {
  constexpr int kCalls = 10;
  Rig rig;
  FlightConfig cfg;
  cfg.clusters = 2;
  cfg.ring_size = 64;
  cfg.ticks_per_us = 16.0;
  FlightRecorder recorder(cfg);
  rig.system.AttachFlightRecorder(&recorder);
  RunWorkload(&rig, kCalls);

  // One caller record and one handler record per call, all successful, and
  // every record contributed a full phase ledger to the histograms.
  EXPECT_EQ(recorder.closed(), static_cast<std::uint64_t>(2 * kCalls));
  EXPECT_EQ(recorder.fate_count(Fate::kOk), recorder.closed());
  EXPECT_EQ(recorder.total_hist().count(), recorder.closed());
  EXPECT_EQ(recorder.phase_hist(Phase::kRpc).count(), recorder.closed());
  // The caller legs charged real rpc time; handler legs real inbox time.
  EXPECT_GT(recorder.phase_hist(Phase::kRpc).sum(), 0u);
  EXPECT_GT(recorder.phase_hist(Phase::kInbox).sum(), 0u);
}

TEST(FlightSimTest, DetachedSystemOpensNoRecords) {
  Rig rig;
  RunWorkload(&rig, 4);
  // Nothing to assert on a recorder -- there is none; the workload completing
  // (stop reached, engine idle) is the property.
  EXPECT_EQ(rig.system.counters().rpcs, 4u);
}

}  // namespace
}  // namespace hflight
