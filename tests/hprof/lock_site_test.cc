// Unit tests for LockSiteStats/SiteTable plus the profiled Figure-5
// contention scenario: handoff classification, contention accounting, queue
// depth, the lockprof JSON export, and -- the acceptance bar for the hooks --
// that attaching (or not attaching) sites leaves the simulated runs
// bit-identical.

#include "src/hprof/lock_site.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/hmetrics/json.h"
#include "src/hsim/locks/stress.h"

namespace {

using hprof::Handoff;
using hprof::LockSiteStats;
using hprof::SiteTable;

TEST(LockSiteStats, ClassifyHandoffs) {
  // Same owner re-acquiring is always same-processor, whatever the geometry.
  EXPECT_EQ(LockSiteStats::Classify(3, 3, 4), Handoff::kSameProcessor);
  EXPECT_EQ(LockSiteStats::Classify(3, 3, 1), Handoff::kSameProcessor);
  // procs_per_cluster=4: processors 0-3 are cluster 0, 4-7 cluster 1.
  EXPECT_EQ(LockSiteStats::Classify(0, 3, 4), Handoff::kSameCluster);
  EXPECT_EQ(LockSiteStats::Classify(3, 4, 4), Handoff::kCrossCluster);
  EXPECT_EQ(LockSiteStats::Classify(7, 4, 4), Handoff::kSameCluster);
  // Degenerate geometry (0 clamps to 1): distinct owners are always remote.
  EXPECT_EQ(LockSiteStats::Classify(1, 2, 1), Handoff::kCrossCluster);
  EXPECT_EQ(LockSiteStats::Classify(1, 2, 0), Handoff::kCrossCluster);
}

TEST(LockSiteStats, RecordsAcquisitionsAndHandoffMatrix) {
  LockSiteStats site("test/lock", /*procs_per_cluster=*/4);
  // First acquisition: no previous owner, so no handoff is counted.
  site.RecordAcquire(/*owner=*/0, /*wait=*/10, /*contended=*/false);
  site.RecordRelease(/*hold=*/100);
  // 0 -> 1: same cluster.  1 -> 1: same processor.  1 -> 5: cross cluster.
  site.RecordAcquire(1, 20, true);
  site.RecordRelease(200);
  site.RecordAcquire(1, 0, false);
  site.RecordRelease(50);
  site.RecordAcquire(5, 40, true);
  site.RecordRelease(150);

  EXPECT_EQ(site.acquisitions(), 4u);
  EXPECT_EQ(site.contended(), 2u);
  EXPECT_EQ(site.uncontended(), 2u);
  EXPECT_EQ(site.handoffs(Handoff::kSameProcessor), 1u);
  EXPECT_EQ(site.handoffs(Handoff::kSameCluster), 1u);
  EXPECT_EQ(site.handoffs(Handoff::kCrossCluster), 1u);
  EXPECT_EQ(site.total_wait_ticks(), 70u);
  EXPECT_EQ(site.wait().count(), 4u);
  EXPECT_EQ(site.hold().count(), 4u);
  EXPECT_EQ(site.hold().sum(), 500u);

  // Per-cluster shares: cluster 0 saw owners 0 and 1 (3 acquisitions,
  // 30 ticks of wait), cluster 1 saw owner 5 (1 acquisition, 40 ticks).
  const auto& by_cluster = site.by_cluster();
  ASSERT_EQ(by_cluster.size(), 2u);
  EXPECT_EQ(by_cluster.at(0).acquisitions, 3u);
  EXPECT_EQ(by_cluster.at(0).wait_ticks, 30u);
  EXPECT_EQ(by_cluster.at(1).acquisitions, 1u);
  EXPECT_EQ(by_cluster.at(1).wait_ticks, 40u);
}

TEST(LockSiteStats, QueueDepthTracksMaximumConcurrentWaiters) {
  LockSiteStats site("test/queue");
  EXPECT_EQ(site.max_queue_depth(), 0u);
  site.EnterQueue();
  site.EnterQueue();
  site.EnterQueue();
  site.LeaveQueue();
  site.EnterQueue();  // depth back to 3; max stays 3
  EXPECT_EQ(site.max_queue_depth(), 3u);
  site.LeaveQueue();
  site.LeaveQueue();
  site.LeaveQueue();
  EXPECT_EQ(site.max_queue_depth(), 3u);
}

TEST(SiteTable, ExportsLockProfSchema) {
  SiteTable table(/*ticks_per_us=*/16.0);
  LockSiteStats& a = table.AddSite("kernel/shared", 4);
  a.RecordAcquire(0, 32, false);
  a.RecordRelease(64);
  a.RecordAcquire(5, 160, true);
  a.RecordRelease(32);
  table.AddSite("cluster0/local", 4);

  hmetrics::JsonValue doc;
  std::string error;
  ASSERT_TRUE(hmetrics::JsonParser::Parse(table.ToJson(), &doc, &error)) << error;
  EXPECT_EQ(doc["schema"].string_value, "hurricane-lockprof/1");
  EXPECT_DOUBLE_EQ(doc["ticks_per_us"].number, 16.0);
  ASSERT_EQ(doc["sites"].array.size(), 2u);
  const hmetrics::JsonValue& site = doc["sites"].at(0);
  EXPECT_EQ(site["name"].string_value, "kernel/shared");
  EXPECT_EQ(site["acquisitions"].number, 2.0);
  EXPECT_EQ(site["contended"].number, 1.0);
  EXPECT_EQ(site["wait"]["sum"].number, 192.0);
  EXPECT_EQ(site["handoffs"]["cross_cluster"].number, 1.0);
  EXPECT_EQ(site["by_cluster"]["0"]["acquisitions"].number, 1.0);
  EXPECT_EQ(site["by_cluster"]["1"]["wait_sum"].number, 160.0);
  // The empty second site still exports a complete record.
  EXPECT_EQ(doc["sites"].at(1)["acquisitions"].number, 0.0);
}

// The paper's claim the profiler must reproduce: a machine-wide shared lock
// dominates by total wait time and its ownership migrates across clusters,
// while per-station locks stay cluster-local.
TEST(ProfiledContention, SharedLockDominatesWithCrossClusterHandoffs) {
  hsim::ProfiledContentionParams params;
  params.duration = hsim::UsToTicks(2000);
  SiteTable sites(16.0);
  const hsim::ProfiledContentionResult result =
      hsim::RunProfiledContention(params, &sites);

  EXPECT_GT(result.shared_acquisitions, 0u);
  EXPECT_GT(result.local_acquisitions, 0u);
  ASSERT_EQ(sites.size(), 5u);  // kernel/shared + one per station

  const LockSiteStats& shared = sites.site(0);
  EXPECT_EQ(shared.name(), "kernel/shared");
  EXPECT_EQ(shared.acquisitions(), result.shared_acquisitions);
  // All 16 processors fight for it: contention, deep queues, and remote
  // handoffs must all be visible.
  EXPECT_GT(shared.contended(), 0u);
  EXPECT_GT(shared.max_queue_depth(), 1u);
  EXPECT_GT(shared.handoffs(Handoff::kCrossCluster), 0u);
  EXPECT_EQ(shared.by_cluster().size(), 4u);

  // The shared lock out-waits every station lock, and the station locks
  // never hand off across clusters (only their own station touches them).
  std::uint64_t local_acqs = 0;
  for (std::size_t i = 1; i < sites.size(); ++i) {
    const LockSiteStats& local = sites.site(i);
    EXPECT_LT(local.total_wait_ticks(), shared.total_wait_ticks()) << local.name();
    EXPECT_EQ(local.handoffs(Handoff::kCrossCluster), 0u) << local.name();
    EXPECT_EQ(local.by_cluster().size(), 1u) << local.name();
    local_acqs += local.acquisitions();
  }
  EXPECT_EQ(local_acqs, result.local_acquisitions);
}

// Zero-cost-when-null, and observation does not perturb: the same scenario
// with and without sites attached produces identical simulated results.
TEST(ProfiledContention, ProfilingDoesNotPerturbTheSimulation) {
  hsim::ProfiledContentionParams params;
  params.duration = hsim::UsToTicks(1000);
  SiteTable sites(16.0);
  const hsim::ProfiledContentionResult profiled =
      hsim::RunProfiledContention(params, &sites);
  const hsim::ProfiledContentionResult bare =
      hsim::RunProfiledContention(params, nullptr);
  EXPECT_EQ(profiled.shared_acquisitions, bare.shared_acquisitions);
  EXPECT_EQ(profiled.local_acquisitions, bare.local_acquisitions);
}

TEST(LockStress, SiteHookDoesNotPerturbStressResults) {
  hsim::LockStressParams params;
  params.kind = hsim::LockKind::kMcsH2;
  params.processors = 8;
  params.hold = hsim::UsToTicks(2);
  params.warmup = hsim::UsToTicks(100);
  params.duration = hsim::UsToTicks(1000);
  const hsim::LockStressResult bare = hsim::RunLockStress(params);

  LockSiteStats site("stress/mcs-h2", 4);
  params.site = &site;
  const hsim::LockStressResult profiled = hsim::RunLockStress(params);

  EXPECT_EQ(profiled.acquisitions, bare.acquisitions);
  EXPECT_EQ(profiled.window_ops, bare.window_ops);
  EXPECT_EQ(profiled.spin_retries, bare.spin_retries);
  EXPECT_EQ(profiled.mcs_repairs, bare.mcs_repairs);
  EXPECT_EQ(profiled.acquire_latency.sum(), bare.acquire_latency.sum());
  EXPECT_EQ(profiled.acquire_latency.max(), bare.acquire_latency.max());
  // And the site actually observed the run.
  EXPECT_EQ(site.acquisitions(), profiled.acquisitions);
  EXPECT_GT(site.contended(), 0u);
}

}  // namespace
