// Tests for the hprof report builder: trace re-attribution on a canned
// Chrome trace (with a committed golden text report -- the CLI contract),
// lockprof-document ingestion, ranking, and error paths.

#include "src/hprof/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/hmetrics/json.h"
#include "src/hprof/lock_site.h"

namespace {

using hprof::ProfileReport;
using hprof::SiteReport;
using hprof::TraceBuildOptions;

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "cannot open " << path;
  if (f == nullptr) {
    return {};
  }
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

std::string TestDataPath(const char* file) {
  return std::string(HPROF_TESTDATA_DIR) + "/" + file;
}

ProfileReport BuildCannedReport() {
  hmetrics::JsonValue doc;
  std::string error;
  EXPECT_TRUE(hmetrics::JsonParser::Parse(
      ReadFileOrDie(TestDataPath("canned_trace.json")), &doc, &error))
      << error;
  ProfileReport report;
  TraceBuildOptions opts;  // procs_per_cluster=4, contended threshold 5 us
  EXPECT_TRUE(report.AddTrace(doc, opts, &error)) << error;
  report.Rank();
  return report;
}

TEST(ReportFromTrace, ReconstructsSiteStatsFromSpans) {
  ProfileReport report = BuildCannedReport();
  ASSERT_EQ(report.sites().size(), 2u);

  // Ranked by total wait: kernel/pgtbl (27.5 us) over cluster0/fs (0.5 us).
  const SiteReport& pgtbl = report.sites()[0];
  EXPECT_EQ(pgtbl.name, "kernel/pgtbl");
  // 4 grants; the truncated span (run ended mid-wait) is not an acquisition.
  EXPECT_EQ(pgtbl.acquisitions, 4u);
  EXPECT_EQ(pgtbl.contended, 3u);  // waits 8, 13, 6 us exceed the 5 us bar
  EXPECT_NEAR(pgtbl.wait.sum_us, 27.5, 1e-9);
  EXPECT_NEAR(pgtbl.wait.max_us, 13.0, 1e-9);
  // Grant order is tids 0, 2, 5, 0 with 4 procs per cluster:
  // 0->2 same-cluster, 2->5 cross, 5->0 cross.
  EXPECT_EQ(pgtbl.handoff_same_processor, 0u);
  EXPECT_EQ(pgtbl.handoff_same_cluster, 1u);
  EXPECT_EQ(pgtbl.handoff_cross_cluster, 2u);
  // Spans [1,9] and [2,15] overlap; nothing else does.
  EXPECT_EQ(pgtbl.max_queue_depth, 2u);
  // Critical sections pair each grant with the next release of that tid:
  // holds 2.5, 3.0, 4.0, 2.0 us.
  EXPECT_EQ(pgtbl.hold.count, 4u);
  EXPECT_NEAR(pgtbl.hold.sum_us, 11.5, 1e-9);
  EXPECT_NEAR(pgtbl.hold.max_us, 4.0, 1e-9);
  // Cluster shares: cluster 0 = tids 0 and 2 (3 acquisitions), cluster 1 =
  // tid 5.
  ASSERT_EQ(pgtbl.by_cluster.size(), 2u);
  EXPECT_EQ(pgtbl.by_cluster.at(0).acquisitions, 3u);
  EXPECT_EQ(pgtbl.by_cluster.at(1).acquisitions, 1u);

  const SiteReport& fs = report.sites()[1];
  EXPECT_EQ(fs.name, "cluster0/fs");
  EXPECT_EQ(fs.acquisitions, 2u);
  EXPECT_EQ(fs.contended, 0u);
  EXPECT_EQ(fs.handoff_same_processor, 1u);
  EXPECT_EQ(fs.max_queue_depth, 1u);
  EXPECT_NEAR(fs.hold.sum_us, 2.0, 1e-9);
}

// Regression for the queue-depth sweep: zero-length acquire spans (wait 0)
// used to emit their departure ahead of their own arrival at the same
// timestamp, driving the running depth negative; truncated spans (run ended
// mid-wait) were dropped from the depth count entirely even though the
// waiter held a queue slot until the end of the trace.
TEST(ReportFromTrace, TruncatedAndZeroLengthSpansCountTowardQueueDepth) {
  const char* trace = R"({
    "traceEvents": [
      {"name": "lock/acquire", "ph": "X", "tid": 0, "ts": 10.0, "dur": 0,
       "args": {"lock": "l"}},
      {"name": "lock/release", "ph": "i", "tid": 0, "ts": 11.0,
       "args": {"lock": "l"}},
      {"name": "lock/acquire", "ph": "X", "tid": 1, "ts": 10.0, "dur": 0,
       "args": {"lock": "l"}},
      {"name": "lock/release", "ph": "i", "tid": 1, "ts": 12.0,
       "args": {"lock": "l"}},
      {"name": "lock/acquire", "ph": "X", "tid": 2, "ts": 10.5, "dur": 0,
       "args": {"lock": "l", "truncated": true}},
      {"name": "lock/acquire", "ph": "X", "tid": 3, "ts": 10.5, "dur": 0,
       "args": {"lock": "l", "truncated": true}}
    ]})";
  hmetrics::JsonValue doc;
  std::string error;
  ASSERT_TRUE(hmetrics::JsonParser::Parse(trace, &doc, &error)) << error;
  ProfileReport report;
  TraceBuildOptions opts;
  ASSERT_TRUE(report.AddTrace(doc, opts, &error)) << error;
  report.Rank();
  ASSERT_EQ(report.sites().size(), 1u);
  const SiteReport& r = report.sites()[0];
  // Only the granted spans are acquisitions...
  EXPECT_EQ(r.acquisitions, 2u);
  // ...and the depth peaks at 2 twice over: the two instant grants coexist
  // at t=10 (the old sweep sorted their departures first and ran the depth
  // to -2, reporting 0 -- or wrapping near 2^32), and the two truncated
  // waiters coexist from t=10.5 on (the old sweep ignored them entirely).
  EXPECT_EQ(r.max_queue_depth, 2u);
}

// The golden file pins the exact text the hprof CLI prints for the canned
// trace.  Regenerate (after inspecting the diff!) by redirecting
//   build/tools/hprof tests/hprof/testdata/canned_trace.json
// into tests/hprof/testdata/canned_trace_report.txt.
TEST(ReportFromTrace, MatchesGoldenTextReport) {
  ProfileReport report = BuildCannedReport();
  const std::string golden =
      ReadFileOrDie(TestDataPath("canned_trace_report.txt"));
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(report.RenderText(), golden);
}

TEST(ReportFromTrace, JsonRenderingParsesAndRanks) {
  ProfileReport report = BuildCannedReport();
  hmetrics::JsonValue doc;
  std::string error;
  ASSERT_TRUE(hmetrics::JsonParser::Parse(report.RenderJson(), &doc, &error))
      << error;
  EXPECT_EQ(doc["schema"].string_value, "hurricane-hprof-report/1");
  ASSERT_EQ(doc["sites"].array.size(), 2u);
  EXPECT_EQ(doc["sites"].at(0)["name"].string_value, "kernel/pgtbl");
  EXPECT_EQ(doc["sites"].at(0)["handoffs"]["cross_cluster"].number, 2.0);
}

TEST(ReportFromLockProf, RoundTripsThroughTheExportSchema) {
  hprof::SiteTable table(16.0);  // simulator ticks
  hprof::LockSiteStats& hot = table.AddSite("kernel/shared", 4);
  hot.RecordAcquire(0, 160, false);   // 10 us
  hot.RecordRelease(32);
  hot.RecordAcquire(5, 320, true);    // 20 us, cross-cluster
  hot.RecordRelease(64);
  table.AddSite("idle", 4);

  ProfileReport report;
  std::string error;
  ASSERT_TRUE(report.AddSites(table, &error)) << error;
  report.Rank();
  ASSERT_EQ(report.sites().size(), 2u);
  const SiteReport& r = report.sites()[0];
  EXPECT_EQ(r.name, "kernel/shared");
  EXPECT_EQ(r.acquisitions, 2u);
  EXPECT_EQ(r.contended, 1u);
  // Ticks convert to microseconds through the table's ticks_per_us.
  EXPECT_NEAR(r.wait.sum_us, 30.0, 1e-9);
  EXPECT_NEAR(r.total_wait_us(), 30.0, 1e-9);
  EXPECT_NEAR(r.hold.sum_us, 6.0, 1e-9);
  EXPECT_EQ(r.handoff_cross_cluster, 1u);
  EXPECT_NEAR(r.remote_handoff_pct(), 100.0, 1e-9);
}

TEST(ReportErrors, RejectsWrongSchemaAndMalformedDocs) {
  ProfileReport report;
  std::string error;
  hmetrics::JsonValue doc;
  ASSERT_TRUE(hmetrics::JsonParser::Parse(
      R"({"schema": "something-else/9", "sites": []})", &doc, &error));
  EXPECT_FALSE(report.AddLockProf(doc, &error));
  EXPECT_NE(error.find("lockprof"), std::string::npos) << error;

  hmetrics::JsonValue not_trace;
  ASSERT_TRUE(hmetrics::JsonParser::Parse(R"({"foo": 1})", &not_trace, &error));
  TraceBuildOptions opts;
  EXPECT_FALSE(report.AddTrace(not_trace, opts, &error));
  EXPECT_EQ(report.sites().size(), 0u);
}

}  // namespace
