// Exact (enqueue-time) cluster attribution for hierarchical locks.
//
// The id-division convention (owner / procs_per_cluster) is right for flat
// locks whose owner ids are dense processor ids, but a hierarchical lock
// knows each waiter's real cluster from its own queue nodes — and the two
// can disagree (native thread ids, kernel worker ids, migrated processes).
// The explicit-cluster RecordAcquire overload and EnterQueue(cluster) let
// the lock report what it knows; these tests pin that the explicit cluster
// wins over the derived one, and a golden file pins the lockprof export
// schema carrying the attribution (per-cluster "enqueues" included).

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/hprof/lock_site.h"

namespace {

using hprof::Handoff;
using hprof::LockSiteStats;
using hprof::SiteTable;

// The canned session: one hierarchical lock whose owner ids would classify
// wrongly under id-division (owner 5 lives in cluster 0, not id-cluster 1).
void FillCannedTable(SiteTable* table) {
  LockSiteStats& site = table->AddSite("svc/hierarchical", /*procs_per_cluster=*/4);

  // Owner 0, cluster 0: first grant, no handoff.
  site.EnterQueue(0);
  site.RecordAcquire(/*owner=*/0, /*wait=*/160, /*contended=*/true, /*cluster=*/0);
  site.LeaveQueue();
  site.RecordRelease(/*hold=*/32);

  // Owner 5 is in cluster 0 as the lock knows it (id-division would say
  // cluster 1): the 0 -> 5 handoff must count as same-cluster.
  site.EnterQueue(0);
  site.RecordAcquire(5, 320, true, 0);
  site.LeaveQueue();
  site.RecordRelease(64);

  // Owner 12, cluster 3: cross-cluster, uncontended (no enqueue).
  site.RecordAcquire(12, 0, false, 3);
  site.RecordRelease(16);

  // Owner 12 re-acquires: same-processor whatever the clusters say.
  site.EnterQueue(3);
  site.RecordAcquire(12, 80, true, 3);
  site.LeaveQueue();
  site.RecordRelease(16);
}

TEST(ClusterAttribution, ExplicitClusterOverridesIdDivision) {
  SiteTable table(/*ticks_per_us=*/16.0);
  FillCannedTable(&table);
  const LockSiteStats& site = table.site(0);

  EXPECT_EQ(site.acquisitions(), 4u);
  EXPECT_EQ(site.contended(), 3u);
  // 0 -> 5 is same-cluster by the lock's attribution; Classify() on the raw
  // ids would have called it cross-cluster.
  EXPECT_EQ(site.handoffs(Handoff::kSameCluster), 1u);
  EXPECT_EQ(LockSiteStats::Classify(0, 5, 4), Handoff::kCrossCluster);
  EXPECT_EQ(site.handoffs(Handoff::kCrossCluster), 1u);  // 5 -> 12
  EXPECT_EQ(site.handoffs(Handoff::kSameProcessor), 1u); // 12 -> 12

  // Enqueue-time capture: cluster 0 waited twice, cluster 3 once; the
  // uncontended grant never entered the queue.
  ASSERT_EQ(site.by_cluster().size(), 2u);
  EXPECT_EQ(site.by_cluster().at(0).acquisitions, 2u);
  EXPECT_EQ(site.by_cluster().at(0).enqueues, 2u);
  EXPECT_EQ(site.by_cluster().at(3).acquisitions, 2u);
  EXPECT_EQ(site.by_cluster().at(3).enqueues, 1u);
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "cannot open " << path;
  if (f == nullptr) {
    return {};
  }
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

// The golden file pins the hurricane-lockprof/1 export for the canned
// session, including the per-cluster "enqueues" field.  Regenerate (after
// inspecting the diff!) by setting HPROF_WRITE_GOLDEN=1 in the environment
// and re-running this test.
TEST(ClusterAttribution, LockProfExportMatchesGolden) {
  SiteTable table(/*ticks_per_us=*/16.0);
  FillCannedTable(&table);
  const std::string json = table.ToJson() + "\n";
  const std::string path =
      std::string(HPROF_TESTDATA_DIR) + "/cluster_attrib_lockprof.json";
  if (std::getenv("HPROF_WRITE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  EXPECT_EQ(json, ReadFileOrDie(path));
}

}  // namespace
