// Exact (enqueue-time) cluster attribution for hierarchical locks.
//
// The id-division convention (owner / procs_per_cluster) is right for flat
// locks whose owner ids are dense processor ids, but a hierarchical lock
// knows each waiter's real cluster from its own queue nodes — and the two
// can disagree (native thread ids, kernel worker ids, migrated processes).
// The explicit-cluster RecordAcquire overload and EnterQueue(cluster) let
// the lock report what it knows; these tests pin that the explicit cluster
// wins over the derived one, and a golden file pins the lockprof export
// schema carrying the attribution (per-cluster "enqueues" included).

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/hprof/lock_site.h"

namespace {

using hprof::Handoff;
using hprof::LockSiteStats;
using hprof::SiteTable;

// The canned session: one hierarchical lock whose owner ids would classify
// wrongly under id-division (owner 5 lives in cluster 0, not id-cluster 1).
void FillCannedTable(SiteTable* table) {
  LockSiteStats& site = table->AddSite("svc/hierarchical", /*procs_per_cluster=*/4);

  // Owner 0, cluster 0: first grant, no handoff.
  site.EnterQueue(0);
  site.RecordAcquire(/*owner=*/0, /*wait=*/160, /*contended=*/true, /*cluster=*/0);
  site.LeaveQueue();
  site.RecordRelease(/*hold=*/32);

  // Owner 5 is in cluster 0 as the lock knows it (id-division would say
  // cluster 1): the 0 -> 5 handoff must count as same-cluster.
  site.EnterQueue(0);
  site.RecordAcquire(5, 320, true, 0);
  site.LeaveQueue();
  site.RecordRelease(64);

  // Owner 12, cluster 3: cross-cluster, uncontended (no enqueue).
  site.RecordAcquire(12, 0, false, 3);
  site.RecordRelease(16);

  // Owner 12 re-acquires: same-processor whatever the clusters say.
  site.EnterQueue(3);
  site.RecordAcquire(12, 80, true, 3);
  site.LeaveQueue();
  site.RecordRelease(16);

  // The hybrid table's reserve-word path: waiters spin *outside* the coarse
  // lock and report their cluster at enqueue time.  (The pre-fix code used
  // the cluster-less EnterQueue() here, so the offered per-cluster mix below
  // -- who waited, not just who won -- was silently dropped.)  Two waiters
  // from different clusters overlap in the queue before either is granted.
  LockSiteStats& reserve = table->AddSite("svc/table.reserve", /*procs_per_cluster=*/4);
  reserve.RecordAcquire(/*owner=*/1, /*wait=*/0, /*contended=*/false, /*cluster=*/0);
  reserve.EnterQueue(1);  // owner 4, cluster 1, starts waiting
  reserve.EnterQueue(2);  // owner 9, cluster 2, waits alongside (depth 2)
  reserve.RecordRelease(/*hold=*/480);  // owner 1 clears the reserve word
  reserve.RecordAcquire(4, 520, true, 1);
  reserve.LeaveQueue();
  reserve.RecordRelease(96);
  reserve.RecordAcquire(9, 1040, true, 2);
  reserve.LeaveQueue();
  reserve.RecordRelease(64);
}

TEST(ClusterAttribution, ExplicitClusterOverridesIdDivision) {
  SiteTable table(/*ticks_per_us=*/16.0);
  FillCannedTable(&table);
  const LockSiteStats& site = table.site(0);

  EXPECT_EQ(site.acquisitions(), 4u);
  EXPECT_EQ(site.contended(), 3u);
  // 0 -> 5 is same-cluster by the lock's attribution; Classify() on the raw
  // ids would have called it cross-cluster.
  EXPECT_EQ(site.handoffs(Handoff::kSameCluster), 1u);
  EXPECT_EQ(LockSiteStats::Classify(0, 5, 4), Handoff::kCrossCluster);
  EXPECT_EQ(site.handoffs(Handoff::kCrossCluster), 1u);  // 5 -> 12
  EXPECT_EQ(site.handoffs(Handoff::kSameProcessor), 1u); // 12 -> 12

  // Enqueue-time capture: cluster 0 waited twice, cluster 3 once; the
  // uncontended grant never entered the queue.
  ASSERT_EQ(site.by_cluster().size(), 2u);
  EXPECT_EQ(site.by_cluster().at(0).acquisitions, 2u);
  EXPECT_EQ(site.by_cluster().at(0).enqueues, 2u);
  EXPECT_EQ(site.by_cluster().at(3).acquisitions, 2u);
  EXPECT_EQ(site.by_cluster().at(3).enqueues, 1u);
}

// The reserve-path site: enqueue-time capture keeps the offered mix (one
// waiter per cluster 1 and 2) even though the winners' clusters would have
// been recorded anyway -- by_cluster() now distinguishes "waited there" from
// "won there", and overlapping waiters reach queue depth 2.
TEST(ClusterAttribution, ReservePathCapturesOfferedMixAtEnqueue) {
  SiteTable table(/*ticks_per_us=*/16.0);
  FillCannedTable(&table);
  const LockSiteStats& reserve = table.site(1);

  EXPECT_EQ(reserve.acquisitions(), 3u);
  EXPECT_EQ(reserve.contended(), 2u);
  EXPECT_EQ(reserve.max_queue_depth(), 2u);
  ASSERT_EQ(reserve.by_cluster().size(), 3u);
  EXPECT_EQ(reserve.by_cluster().at(0).enqueues, 0u);  // uncontended winner
  EXPECT_EQ(reserve.by_cluster().at(0).acquisitions, 1u);
  EXPECT_EQ(reserve.by_cluster().at(1).enqueues, 1u);
  EXPECT_EQ(reserve.by_cluster().at(2).enqueues, 1u);
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "cannot open " << path;
  if (f == nullptr) {
    return {};
  }
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

// The golden file pins the hurricane-lockprof/1 export for the canned
// session, including the per-cluster "enqueues" field.  Regenerate (after
// inspecting the diff!) by setting HPROF_WRITE_GOLDEN=1 in the environment
// and re-running this test.
TEST(ClusterAttribution, LockProfExportMatchesGolden) {
  SiteTable table(/*ticks_per_us=*/16.0);
  FillCannedTable(&table);
  const std::string json = table.ToJson() + "\n";
  const std::string path =
      std::string(HPROF_TESTDATA_DIR) + "/cluster_attrib_lockprof.json";
  if (std::getenv("HPROF_WRITE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  EXPECT_EQ(json, ReadFileOrDie(path));
}

}  // namespace
