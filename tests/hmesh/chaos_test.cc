// The ISSUE 10 chaos campaign as a unit test: kill one machine at steady
// state, recover it mid-load, and audit the acceptance gates --
//
//   1. exact-once: every acked client write was applied at exactly one
//      version mesh-wide (the apply ledger has one entry per acked op);
//   2. zero lost ops: every policy holder of every key actually stores it
//      (possession is asserted, not used to gate the audit -- a replica that
//      silently lost data must fail here, not drop out), and the highest
//      acked version of every key is what the owner and every holder store;
//   3. bounded unavailability: failover commits within the detection budget
//      (suspect_after escalating timeouts) and the recovered machine is
//      re-synced within the configured re-sync window;
//   4. bit-identical replay: running the whole campaign twice at the same
//      seed produces the same digest.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/hmesh/client.h"
#include "src/hmesh/mesh.h"

namespace hmesh {
namespace {

using hsim::Tick;
using hsim::UsToTicks;

constexpr std::uint32_t kMachines = 4;
constexpr std::uint32_t kVictim = 3;
constexpr Tick kKillAt = UsToTicks(2'000);
constexpr Tick kRecoverAt = UsToTicks(6'000);
// Detection: suspect_after=4 escalating timeouts from the first post-kill
// call (120+240+480+960 us plus jitter and send overheads), plus up to one
// inter-arrival gap before anything calls the dead machine.
constexpr Tick kDetectBudget = UsToTicks(3'000);
// Re-sync: two cursor-batched pull rounds over three peers.
constexpr Tick kSyncBudget = UsToTicks(10'000);

template <typename Pred>
bool DriveUntil(hsim::Engine& eng, Tick deadline, Pred pred) {
  while (!pred() && eng.now() < deadline) {
    if (eng.RunUntil(eng.now() + UsToTicks(50))) {
      break;
    }
  }
  return pred();
}

struct ChaosResult {
  bool all_done = false;
  bool quiesced = false;
  std::uint64_t digest = 0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t failovers = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t put_dedups = 0;
  Mesh::Timeline timeline;
  std::vector<AckedWrite> acked;
  // Copied store of every machine for the zero-lost audit.
  std::vector<std::map<std::uint64_t, Mesh::Entry>> stores;
  std::map<std::uint64_t, std::vector<std::uint64_t>> ledger;
  std::vector<std::uint32_t> owners;  // final ring owner per key
  std::vector<std::vector<std::uint32_t>> holders;  // final policy holders per key
  std::vector<std::vector<bool>> holds;  // [m][key] HoldsLocally at the end
};

ChaosResult RunChaosCampaign() {
  hsim::Engine eng;
  MeshConfig mc;
  mc.machines = kMachines;
  Mesh mesh(&eng, mc);

  // A lightly lossy transport underneath the whole campaign, so the kill and
  // the recovery both happen while retransmit/dedup paths are active.
  hsim::FaultConfig faults;
  faults.drop_request = 0.01;
  faults.drop_reply = 0.01;
  faults.dup_request = 0.005;
  faults.seed = 1234;
  mesh.set_fault_plan(faults);
  mesh.Start();

  // Clients on the survivors only (a killed machine's clients die with it;
  // their fate is not what this campaign measures).
  ClientConfig cc;
  cc.workload.num_clusters = mc.machines;
  cc.workload.keys_per_cluster = mc.keys_per_machine;
  cc.workload.read_fraction = 0.8;  // write-rich: exercises failover puts
  cc.workload.seed = 77;
  cc.ops = 900;
  cc.rate_per_s = 80'000;  // ~11 ms of offered load, spanning kill + recovery
  std::vector<ClientStats> stats(kMachines - 1);
  for (std::uint32_t m = 0; m < kMachines - 1; ++m) {
    eng.Spawn(RunClient(&mesh, m, cc, &stats[m]));
  }

  eng.Spawn(mesh.KillAt(kKillAt, kVictim));
  eng.Spawn(mesh.RecoverAt(kRecoverAt, kVictim));

  ChaosResult r;
  r.all_done = DriveUntil(eng, UsToTicks(2'000'000), [&] {
    return std::all_of(stats.begin(), stats.end(),
                       [](const ClientStats& s) { return s.done; }) &&
           mesh.timeline(kVictim).synced_at != 0;
  });
  r.quiesced = DriveUntil(eng, UsToTicks(2'100'000), [&] { return mesh.Quiescent(); });

  for (std::uint32_t m = 0; m < kMachines - 1; ++m) {
    r.issued += stats[m].issued;
    r.completed += stats[m].completed;
    r.failed += stats[m].failed;
    r.acked.insert(r.acked.end(), stats[m].acked_writes.begin(),
                   stats[m].acked_writes.end());
  }
  r.failovers = mesh.failovers();
  r.resyncs = mesh.resyncs();
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    r.put_dedups += mesh.node_counters(m).put_dedups;
  }
  r.timeline = mesh.timeline(kVictim);
  r.digest = mesh.Digest();
  r.ledger = mesh.op_versions();
  r.stores.resize(kMachines);
  r.holds.assign(kMachines, std::vector<bool>(mc.keys(), false));
  r.owners.resize(mc.keys());
  r.holders.resize(mc.keys());
  for (std::uint64_t key = 0; key < mc.keys(); ++key) {
    r.owners[key] = mesh.ring().OwnerOf(key);
    r.holders[key] = mesh.HoldersOf(key);
    for (std::uint32_t m = 0; m < kMachines; ++m) {
      const Mesh::Entry* e = mesh.Lookup(m, key);
      if (e != nullptr) {
        r.stores[m][key] = *e;
      }
      r.holds[m][key] = mesh.HoldsLocally(m, key);
    }
  }
  mesh.Shutdown();
  eng.RunUntilIdle();
  return r;
}

TEST(MeshChaosTest, KillRecoverCycleMeetsAllGates) {
  const ChaosResult r = RunChaosCampaign();
  ASSERT_TRUE(r.all_done) << "campaign did not drain: completed " << r.completed << "/"
                          << r.issued << ", synced_at=" << r.timeline.synced_at;
  ASSERT_TRUE(r.quiesced);

  // Every op issued by a surviving client completed; none were abandoned.
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.failovers, 1u);
  EXPECT_EQ(r.resyncs, 1u);

  // Gate 1: exact-once.  One ledger entry per acked write, at the acked
  // version.
  for (const AckedWrite& w : r.acked) {
    ASSERT_EQ(r.ledger.count(w.op_id), 1u) << "acked op " << w.op_id << " never applied";
    const auto& versions = r.ledger.at(w.op_id);
    ASSERT_EQ(versions.size(), 1u)
        << "op " << w.op_id << " applied at " << versions.size() << " distinct versions";
    EXPECT_EQ(versions[0], w.version);
  }

  // Gate 2: zero lost ops.  First, possession: at the end of the campaign
  // every machine is up and the victim has completed resync, so *every*
  // policy holder of *every* key -- written or only seeded -- must actually
  // store it.  This is asserted outright rather than used to gate the value
  // audit: HoldsLocally is false precisely when the store entry is missing,
  // so a replica that silently lost data would otherwise be excluded from
  // the very check meant to catch the loss.
  for (std::uint64_t key = 0; key < r.owners.size(); ++key) {
    for (std::uint32_t m : r.holders[key]) {
      EXPECT_TRUE(r.holds[m][key]) << "holder " << m << " does not serve key " << key;
      EXPECT_EQ(r.stores[m].count(key), 1u) << "holder " << m << " lost key " << key;
    }
  }
  // Then values: for every written key, its highest acked write is what the
  // final owner stores, and every policy holder agrees.
  std::map<std::uint64_t, AckedWrite> newest;
  for (const AckedWrite& w : r.acked) {
    auto [it, inserted] = newest.emplace(w.key, w);
    if (!inserted && w.version > it->second.version) {
      it->second = w;
    }
  }
  EXPECT_GT(newest.size(), 10u);  // the campaign actually wrote broadly
  for (const auto& [key, w] : newest) {
    const std::uint32_t owner = r.owners[key];
    const auto it = r.stores[owner].find(key);
    ASSERT_NE(it, r.stores[owner].end()) << "owner " << owner << " lost key " << key;
    EXPECT_EQ(it->second.version, w.version) << key;
    EXPECT_EQ(it->second.value, w.value) << key;
    for (std::uint32_t m : r.holders[key]) {
      if (m == owner) {
        continue;
      }
      const auto rit = r.stores[m].find(key);
      ASSERT_NE(rit, r.stores[m].end()) << "holder " << m << " lost key " << key;
      EXPECT_EQ(rit->second.version, w.version) << "stale replica on " << m << " key " << key;
      EXPECT_EQ(rit->second.value, w.value) << key;
    }
  }

  // Gate 3: bounded unavailability.  Failover commits within the detection
  // budget; the rejoined machine is fully re-synced within the sync budget.
  ASSERT_EQ(r.timeline.killed_at, kKillAt);
  ASSERT_GT(r.timeline.failover_at, r.timeline.killed_at);
  EXPECT_LE(r.timeline.failover_at - r.timeline.killed_at, kDetectBudget);
  ASSERT_GE(r.timeline.recover_at, kRecoverAt);
  ASSERT_GT(r.timeline.synced_at, r.timeline.recover_at);
  EXPECT_LE(r.timeline.synced_at - r.timeline.recover_at, kSyncBudget);
}

TEST(MeshChaosTest, CampaignReplaysBitIdentically) {
  const ChaosResult a = RunChaosCampaign();
  const ChaosResult b = RunChaosCampaign();
  ASSERT_TRUE(a.all_done);
  ASSERT_TRUE(b.all_done);
  // Gate 4: same seeds, same kill/recover schedule -> the same mesh, bit for
  // bit: digest folds stores, counters, traffic, ring, and the ledger.
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timeline.failover_at, b.timeline.failover_at);
  EXPECT_EQ(a.timeline.synced_at, b.timeline.synced_at);
  EXPECT_EQ(a.put_dedups, b.put_dedups);
}

}  // namespace
}  // namespace hmesh
