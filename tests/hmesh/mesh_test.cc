// hmesh core behaviour: routing + replication placement, local vs forwarded
// reads, broadcast-update write replication, exact-once under a lossy
// transport, whole-run determinism, and the partitioned-machine no-eviction
// guarantee (ISSUE 10 satellite 1 tied into the tentpole).

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/hmesh/client.h"
#include "src/hmesh/mesh.h"

namespace hmesh {
namespace {

using hsim::Tick;
using hsim::UsToTicks;

// Drives the engine in slices until pred() holds or `deadline` passes.
template <typename Pred>
bool DriveUntil(hsim::Engine& eng, Tick deadline, Pred pred) {
  while (!pred() && eng.now() < deadline) {
    if (eng.RunUntil(eng.now() + UsToTicks(50))) {
      break;  // queue drained; nothing will ever change pred again
    }
  }
  return pred();
}

hsim::Task<void> OneRead(Mesh* mesh, std::uint32_t m, std::uint64_t key,
                         std::uint64_t* value, bool* local, MeshStatus* status) {
  hsim::Processor& p = mesh->machine(m).processor(1);
  *status = co_await mesh->ClientRead(p, m, key, value, local, nullptr);
}

hsim::Task<void> OneWrite(Mesh* mesh, std::uint32_t m, std::uint64_t key,
                          std::uint64_t value, std::uint64_t op_id, std::uint64_t* version,
                          MeshStatus* status) {
  hsim::Processor& p = mesh->machine(m).processor(1);
  *status = co_await mesh->ClientWrite(p, m, key, value, op_id, version, nullptr);
}

MeshConfig SmallMesh(std::uint32_t machines = 4) {
  MeshConfig config;
  config.machines = machines;
  return config;
}

TEST(MeshTest, ReplicationPlacement) {
  hsim::Engine eng;
  Mesh mesh(&eng, SmallMesh());

  // Hot keys (rank < hot_ranks, i.e. key / machines < 16) are replicated on
  // every member; cold keys on `replicas` distinct machines, owner first.
  const std::uint64_t hot = 5;
  const std::uint64_t cold = 16 * 4 + 3;  // rank 16: first cold rank
  EXPECT_EQ(mesh.HoldersOf(hot).size(), 4u);
  const auto cold_holders = mesh.HoldersOf(cold);
  ASSERT_EQ(cold_holders.size(), 2u);
  EXPECT_EQ(cold_holders[0], mesh.ring().OwnerOf(cold));
  EXPECT_NE(cold_holders[0], cold_holders[1]);
}

TEST(MeshTest, LocalAndForwardedReads) {
  hsim::Engine eng;
  Mesh mesh(&eng, SmallMesh());
  mesh.Start();

  // Hot key: every machine serves it from its own replica.
  const std::uint64_t hot = 7;
  for (std::uint32_t m = 0; m < 4; ++m) {
    std::uint64_t value = 0;
    bool local = false;
    MeshStatus status = MeshStatus::kPending;
    eng.Spawn(OneRead(&mesh, m, hot, &value, &local, &status));
    ASSERT_TRUE(DriveUntil(eng, UsToTicks(10'000),
                           [&] { return status != MeshStatus::kPending; }));
    EXPECT_EQ(status, MeshStatus::kOk);
    EXPECT_TRUE(local) << m;
    EXPECT_EQ(value, hot * 7 + 1);  // preload value
    EXPECT_EQ(mesh.node_counters(m).local_reads, 1u);
  }

  // Cold key read from a non-holder forwards to the owner over the wire.
  const std::uint64_t cold = 20 * 4 + 1;
  const auto holders = mesh.HoldersOf(cold);
  std::uint32_t outsider = 0;
  while (std::find(holders.begin(), holders.end(), outsider) != holders.end()) {
    ++outsider;
  }
  std::uint64_t value = 0;
  bool local = true;
  MeshStatus status = MeshStatus::kPending;
  eng.Spawn(OneRead(&mesh, outsider, cold, &value, &local, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(10'000), [&] { return status != MeshStatus::kPending; }));
  EXPECT_EQ(status, MeshStatus::kOk);
  EXPECT_FALSE(local);
  EXPECT_EQ(value, cold * 7 + 1);
  EXPECT_EQ(mesh.node_counters(outsider).forwarded_reads, 1u);
  EXPECT_EQ(mesh.node_counters(holders[0]).gets_served, 1u);
  EXPECT_GE(mesh.traffic(outsider, holders[0]), 1u);

  mesh.Shutdown();
  eng.RunUntilIdle();
}

TEST(MeshTest, WriteReplicatesToEveryHolder) {
  hsim::Engine eng;
  Mesh mesh(&eng, SmallMesh());
  mesh.Start();

  // A hot-key write from a non-owner machine must reach all four replicas.
  const std::uint64_t hot = 3;
  const std::uint32_t owner = mesh.ring().OwnerOf(hot);
  const std::uint32_t writer = (owner + 1) % 4;
  const std::uint64_t op_id = ClientOpId(writer, 0);
  std::uint64_t version = 0;
  MeshStatus status = MeshStatus::kPending;
  eng.Spawn(OneWrite(&mesh, writer, hot, 777, op_id, &version, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(50'000), [&] { return status != MeshStatus::kPending; }));
  ASSERT_EQ(status, MeshStatus::kOk);
  EXPECT_EQ(version, 2u);  // preload was version 1

  ASSERT_TRUE(DriveUntil(eng, UsToTicks(50'000), [&] { return mesh.Quiescent(); }));
  for (std::uint32_t m = 0; m < 4; ++m) {
    const Mesh::Entry* e = mesh.Lookup(m, hot);
    ASSERT_NE(e, nullptr) << m;
    EXPECT_EQ(e->value, 777u) << m;
    EXPECT_EQ(e->version, 2u) << m;
    EXPECT_EQ(e->writer_op, op_id) << m;
  }
  // Exactly one ledger entry: the op was applied at exactly one version.
  ASSERT_EQ(mesh.op_versions().count(op_id), 1u);
  EXPECT_EQ(mesh.op_versions().at(op_id).size(), 1u);

  // Cold-key write: only its two policy holders carry the data.
  const std::uint64_t cold = 25 * 4 + 2;
  const auto holders = mesh.HoldersOf(cold);
  const std::uint64_t op2 = ClientOpId(writer, 1);
  status = MeshStatus::kPending;
  eng.Spawn(OneWrite(&mesh, writer, cold, 888, op2, &version, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(50'000), [&] { return status != MeshStatus::kPending; }));
  ASSERT_EQ(status, MeshStatus::kOk);
  ASSERT_TRUE(DriveUntil(eng, UsToTicks(50'000), [&] { return mesh.Quiescent(); }));
  for (std::uint32_t m = 0; m < 4; ++m) {
    const bool is_holder = std::find(holders.begin(), holders.end(), m) != holders.end();
    const Mesh::Entry* e = mesh.Lookup(m, cold);
    if (is_holder) {
      ASSERT_NE(e, nullptr) << m;
      EXPECT_EQ(e->value, 888u) << m;
    } else {
      EXPECT_TRUE(e == nullptr || e->value != 888u) << m;
    }
  }

  mesh.Shutdown();
  eng.RunUntilIdle();
}

TEST(MeshTest, RetriedPutSurvivesInterveningWriteToSameKey) {
  hsim::Engine eng;
  Mesh mesh(&eng, SmallMesh());
  mesh.Start();

  const std::uint64_t key = 3;  // hot: replicated on every machine
  const std::uint32_t writer = (mesh.ring().OwnerOf(key) + 1) % 4;
  const std::uint64_t op_a = ClientOpId(writer, 0);
  const std::uint64_t op_b = ClientOpId(writer, 1);

  std::uint64_t version_a = 0;
  std::uint64_t version_b = 0;
  std::uint64_t version_retry = 0;
  MeshStatus status = MeshStatus::kPending;
  eng.Spawn(OneWrite(&mesh, writer, key, 111, op_a, &version_a, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(50'000), [&] { return status != MeshStatus::kPending; }));
  ASSERT_EQ(status, MeshStatus::kOk);
  status = MeshStatus::kPending;
  eng.Spawn(OneWrite(&mesh, writer, key, 222, op_b, &version_b, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(50'000), [&] { return status != MeshStatus::kPending; }));
  ASSERT_EQ(status, MeshStatus::kOk);
  ASSERT_GT(version_b, version_a);

  // A retry of op A whose ack was lost, arriving only after op B overwrote
  // the key.  The per-key writer slot now names op B, so only the per-node
  // applied-op table can recognise the retry: it must be answered from the
  // record at its original version, never re-executed at a fresh one.
  status = MeshStatus::kPending;
  eng.Spawn(OneWrite(&mesh, writer, key, 111, op_a, &version_retry, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(50'000), [&] { return status != MeshStatus::kPending; }));
  ASSERT_EQ(status, MeshStatus::kOk);
  EXPECT_EQ(version_retry, version_a);
  ASSERT_TRUE(DriveUntil(eng, UsToTicks(50'000), [&] { return mesh.Quiescent(); }));

  // Exactly one application of each op, and the intervening write is still
  // the newest data everywhere.
  ASSERT_EQ(mesh.op_versions().count(op_a), 1u);
  EXPECT_EQ(mesh.op_versions().at(op_a), std::vector<std::uint64_t>{version_a});
  ASSERT_EQ(mesh.op_versions().count(op_b), 1u);
  EXPECT_EQ(mesh.op_versions().at(op_b), std::vector<std::uint64_t>{version_b});
  std::uint64_t dedups = 0;
  for (std::uint32_t m = 0; m < 4; ++m) {
    dedups += mesh.node_counters(m).put_dedups;
    const Mesh::Entry* e = mesh.Lookup(m, key);
    ASSERT_NE(e, nullptr) << m;
    EXPECT_EQ(e->value, 222u) << m;
    EXPECT_EQ(e->version, version_b) << m;
  }
  EXPECT_EQ(dedups, 1u);

  mesh.Shutdown();
  eng.RunUntilIdle();
}

TEST(MeshTest, RecoverRestoresEveryHeldKeyIncludingKeyZero) {
  hsim::Engine eng;
  MeshConfig mc = SmallMesh();
  Mesh mesh(&eng, mc);
  mesh.Start();

  // Crash and promptly recover a holder of key 0 with no load: nobody
  // suspects it, so the ring never changes and the victim must rebuild its
  // entire held set -- key 0 included -- purely from the sync pulls.
  const std::uint32_t victim = mesh.ring().OwnerOf(0);
  eng.Spawn(mesh.KillAt(UsToTicks(100), victim));
  eng.Spawn(mesh.RecoverAt(UsToTicks(200), victim));
  ASSERT_TRUE(DriveUntil(eng, UsToTicks(200'000),
                         [&] { return mesh.timeline(victim).synced_at != 0; }));

  for (std::uint64_t key = 0; key < mc.keys(); ++key) {
    const auto holders = mesh.HoldersOf(key);
    if (std::find(holders.begin(), holders.end(), victim) == holders.end()) {
      continue;
    }
    const Mesh::Entry* e = mesh.Lookup(victim, key);
    ASSERT_NE(e, nullptr) << "resync never restored key " << key;
    EXPECT_EQ(e->value, key * 7 + 1) << key;  // preload value
    EXPECT_EQ(e->version, 1u) << key;
  }

  mesh.Shutdown();
  eng.RunUntilIdle();
}

TEST(MeshTest, RetryAfterRecoveryDedupsFromSyncedOps) {
  hsim::Engine eng;
  Mesh mesh(&eng, SmallMesh());
  mesh.Start();

  const std::uint64_t key = 2;  // hot: every machine is a holder
  const std::uint32_t victim = mesh.ring().OwnerOf(key);
  const std::uint32_t writer = (victim + 1) % 4;
  const std::uint64_t op_a = ClientOpId(writer, 0);
  const std::uint64_t op_b = ClientOpId(writer, 1);

  std::uint64_t version_a = 0;
  std::uint64_t version_b = 0;
  MeshStatus status = MeshStatus::kPending;
  eng.Spawn(OneWrite(&mesh, writer, key, 111, op_a, &version_a, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(50'000), [&] { return status != MeshStatus::kPending; }));
  ASSERT_EQ(status, MeshStatus::kOk);
  status = MeshStatus::kPending;
  eng.Spawn(OneWrite(&mesh, writer, key, 222, op_b, &version_b, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(50'000), [&] { return status != MeshStatus::kPending; }));
  ASSERT_EQ(status, MeshStatus::kOk);
  ASSERT_TRUE(DriveUntil(eng, UsToTicks(50'000), [&] { return mesh.Quiescent(); }));

  // Crash the owner (its dedup table dies with it) and recover it.  The ops
  // sync must rebuild the record for op A from the surviving replicas even
  // though every store's per-key writer slot now names op B.
  const hsim::Tick now = eng.now();
  eng.Spawn(mesh.KillAt(now + UsToTicks(100), victim));
  eng.Spawn(mesh.RecoverAt(now + UsToTicks(200), victim));
  ASSERT_TRUE(DriveUntil(eng, UsToTicks(400'000),
                         [&] { return mesh.timeline(victim).synced_at != 0; }));

  // A late retry of op A routed to the rejoined owner must dedup, not
  // re-execute.
  std::uint64_t version_retry = 0;
  status = MeshStatus::kPending;
  eng.Spawn(OneWrite(&mesh, writer, key, 111, op_a, &version_retry, &status));
  ASSERT_TRUE(
      DriveUntil(eng, UsToTicks(450'000), [&] { return status != MeshStatus::kPending; }));
  ASSERT_EQ(status, MeshStatus::kOk);
  EXPECT_EQ(version_retry, version_a);
  ASSERT_EQ(mesh.op_versions().count(op_a), 1u);
  EXPECT_EQ(mesh.op_versions().at(op_a), std::vector<std::uint64_t>{version_a});
  EXPECT_EQ(mesh.node_counters(victim).put_dedups, 1u);
  EXPECT_GT(mesh.node_counters(victim).sync_ops_in, 0u);

  mesh.Shutdown();
  eng.RunUntilIdle();
}

// --- full-load scenarios ------------------------------------------------------

struct LoadResult {
  std::uint64_t digest = 0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t local_reads = 0;
  std::uint64_t forwarded_reads = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t failovers = 0;
  std::uint64_t partitioned = 0;
  std::vector<AckedWrite> acked;
  bool all_done = false;
};

// Audits the mesh after a drained run: every acked write applied at exactly
// one version (exact-once) and the highest acked version of every key present
// with the right value on the owner and every possession-holding replica
// (zero lost ops).
void AuditMesh(const Mesh& mesh, const std::vector<AckedWrite>& acked) {
  std::map<std::uint64_t, AckedWrite> newest;  // key -> highest acked version
  for (const AckedWrite& w : acked) {
    ASSERT_EQ(mesh.op_versions().count(w.op_id), 1u) << "op " << w.op_id << " never applied";
    const auto& versions = mesh.op_versions().at(w.op_id);
    ASSERT_EQ(versions.size(), 1u) << "op " << w.op_id << " applied at " << versions.size()
                                   << " distinct versions";
    EXPECT_EQ(versions[0], w.version) << w.op_id;
    auto [it, inserted] = newest.emplace(w.key, w);
    if (!inserted && w.version > it->second.version) {
      it->second = w;
    }
  }
  for (const auto& [key, w] : newest) {
    const std::uint32_t owner = mesh.ring().OwnerOf(key);
    const Mesh::Entry* e = mesh.Lookup(owner, key);
    ASSERT_NE(e, nullptr) << "owner of key " << key << " lost it";
    EXPECT_EQ(e->version, w.version) << key;
    EXPECT_EQ(e->value, w.value) << key;
    for (std::uint32_t m = 0; m < mesh.config().machines; ++m) {
      if (m != owner && mesh.HoldsLocally(m, key)) {
        const Mesh::Entry* r = mesh.Lookup(m, key);
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->version, w.version) << "stale replica of key " << key << " on " << m;
        EXPECT_EQ(r->value, w.value) << key;
      }
    }
  }
}

// One complete load scenario: 4 machines, a client per machine, optional
// transport faults and an optional partition window on machine 1.
LoadResult RunLoadScenario(const hsim::FaultConfig* faults, bool partition_window,
                           bool audit = true) {
  hsim::Engine eng;
  MeshConfig mc = SmallMesh();
  Mesh mesh(&eng, mc);
  if (faults != nullptr) {
    mesh.set_fault_plan(*faults);
  }
  if (partition_window) {
    // Unplug machine 1 for 1.5 ms mid-run; it stays a ring member throughout.
    mesh.fault_plan()->PartitionNode(1, UsToTicks(1000), UsToTicks(2500));
  }
  mesh.Start();

  ClientConfig cc;
  cc.workload.num_clusters = mc.machines;
  cc.workload.keys_per_cluster = mc.keys_per_machine;
  cc.workload.read_fraction = 0.9;
  cc.workload.seed = 42;
  cc.ops = 200;
  cc.rate_per_s = 150'000;
  std::vector<ClientStats> stats(mc.machines);
  for (std::uint32_t m = 0; m < mc.machines; ++m) {
    eng.Spawn(RunClient(&mesh, m, cc, &stats[m]));
  }

  LoadResult r;
  r.all_done = DriveUntil(eng, UsToTicks(1'000'000), [&] {
    return std::all_of(stats.begin(), stats.end(),
                       [](const ClientStats& s) { return s.done; });
  });
  DriveUntil(eng, UsToTicks(1'100'000), [&] { return mesh.Quiescent(); });

  for (std::uint32_t m = 0; m < mc.machines; ++m) {
    r.issued += stats[m].issued;
    r.completed += stats[m].completed;
    r.failed += stats[m].failed;
    r.local_reads += stats[m].local_reads;
    r.forwarded_reads += stats[m].forwarded_reads;
    r.retransmits += mesh.node_counters(m).retransmits;
    r.acked.insert(r.acked.end(), stats[m].acked_writes.begin(),
                   stats[m].acked_writes.end());
  }
  r.failovers = mesh.failovers();
  if (mesh.fault_plan() != nullptr) {
    r.partitioned = mesh.fault_plan()->counters().partitioned();
  }
  r.digest = mesh.Digest();
  if (audit) {
    AuditMesh(mesh, r.acked);
  }
  mesh.Shutdown();
  eng.RunUntilIdle();
  return r;
}

TEST(MeshLoadTest, CleanTransportExactOnce) {
  const LoadResult r = RunLoadScenario(nullptr, false);
  ASSERT_TRUE(r.all_done);
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.local_reads, 0u);
  EXPECT_GT(r.forwarded_reads, 0u);
  // The zipf head is hot and replicated everywhere: most reads are local.
  EXPECT_GT(r.local_reads, r.forwarded_reads);
  EXPECT_EQ(r.failovers, 0u);
}

TEST(MeshLoadTest, LossyTransportExactOnce) {
  hsim::FaultConfig faults;
  faults.drop_request = 0.03;
  faults.drop_reply = 0.03;
  faults.dup_request = 0.02;
  faults.delay_request = 0.05;
  faults.seed = 99;
  const LoadResult r = RunLoadScenario(&faults, false);
  ASSERT_TRUE(r.all_done);
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.retransmits, 0u);  // the loss actually bit
  // Losses must never evict a live machine: retransmits recover, the
  // directory only commits failover for a machine that is really down.
  EXPECT_EQ(r.failovers, 0u);
}

TEST(MeshLoadTest, DeterministicReplay) {
  hsim::FaultConfig faults;
  faults.drop_request = 0.02;
  faults.drop_reply = 0.02;
  faults.dup_reply = 0.02;
  faults.seed = 7;
  const LoadResult a = RunLoadScenario(&faults, false, /*audit=*/false);
  const LoadResult b = RunLoadScenario(&faults, false, /*audit=*/false);
  ASSERT_TRUE(a.all_done);
  ASSERT_TRUE(b.all_done);
  EXPECT_EQ(a.digest, b.digest);  // bit-identical replay
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retransmits, b.retransmits);
}

TEST(MeshLoadTest, PartitionedMachineIsNotEvicted) {
  hsim::FaultConfig faults;  // no probabilistic faults; only the window
  const LoadResult r = RunLoadScenario(&faults, /*partition_window=*/true);
  ASSERT_TRUE(r.all_done);
  // Ops stall against the partitioned machine but complete after the heal;
  // nothing is lost and -- critically -- the live machine was never evicted.
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.partitioned, 0u);   // the window actually dropped traffic
  EXPECT_GT(r.retransmits, 0u);
  EXPECT_EQ(r.failovers, 0u);
}

}  // namespace
}  // namespace hmesh
