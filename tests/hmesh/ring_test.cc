// Consistent-hash ring coverage (ISSUE 10 satellite): seeded determinism and
// join-order independence, the <= 2/N key-movement bound on a single machine
// join or leave, and replica-set disjointness with the owner first.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/hmesh/ring.h"

namespace hmesh {
namespace {

constexpr std::uint64_t kKeys = 20'000;

HashRing MakeRing(std::uint32_t machines, std::uint64_t seed = 0x5eedULL,
                  std::uint32_t vnodes = 64) {
  HashRing ring(vnodes, seed);
  for (std::uint32_t m = 0; m < machines; ++m) {
    ring.AddMachine(m);
  }
  return ring;
}

TEST(HashRingTest, SeededPlacementIsDeterministic) {
  const HashRing a = MakeRing(8);
  const HashRing b = MakeRing(8);
  EXPECT_EQ(a.Digest(), b.Digest());
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(a.OwnerOf(k), b.OwnerOf(k)) << k;
  }

  // A different seed places differently (the seed is real, not decorative).
  const HashRing c = MakeRing(8, /*seed=*/0xbeef);
  EXPECT_NE(a.Digest(), c.Digest());
  std::uint64_t moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    moved += a.OwnerOf(k) != c.OwnerOf(k);
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, PlacementIgnoresJoinOrder) {
  HashRing forward(64, 0x5eed);
  HashRing backward(64, 0x5eed);
  for (std::uint32_t m = 0; m < 6; ++m) {
    forward.AddMachine(m);
  }
  for (std::uint32_t m = 6; m-- > 0;) {
    backward.AddMachine(m);
  }
  EXPECT_EQ(forward.Digest(), backward.Digest());
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(forward.OwnerOf(k), backward.OwnerOf(k)) << k;
  }
}

TEST(HashRingTest, SingleJoinMovesAtMostTwoOverN) {
  for (std::uint32_t n : {3u, 4u, 7u}) {
    HashRing ring = MakeRing(n);
    std::vector<std::uint32_t> before(kKeys);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      before[k] = ring.OwnerOf(k);
    }
    ring.AddMachine(n);  // one machine joins
    std::uint64_t moved = 0;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      const std::uint32_t owner = ring.OwnerOf(k);
      if (owner != before[k]) {
        // Every moved key moved TO the joiner; join steals arcs, it never
        // shuffles keys between incumbents.
        ASSERT_EQ(owner, n) << k;
        ++moved;
      }
    }
    const double frac = static_cast<double>(moved) / kKeys;
    EXPECT_GT(moved, 0u) << n;
    EXPECT_LE(frac, 2.0 / (n + 1)) << "n=" << n << " moved " << frac;
  }
}

TEST(HashRingTest, SingleLeaveMovesOnlyTheLeaversKeys) {
  for (std::uint32_t n : {4u, 8u}) {
    HashRing ring = MakeRing(n);
    std::vector<std::uint32_t> before(kKeys);
    std::uint64_t owned_by_victim = 0;
    const std::uint32_t victim = n / 2;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      before[k] = ring.OwnerOf(k);
      owned_by_victim += before[k] == victim;
    }
    ring.RemoveMachine(victim);
    std::uint64_t moved = 0;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      const std::uint32_t owner = ring.OwnerOf(k);
      if (before[k] != victim) {
        // Survivors' keys do not move at all.
        ASSERT_EQ(owner, before[k]) << k;
      } else {
        ASSERT_NE(owner, victim) << k;
        ++moved;
      }
    }
    EXPECT_EQ(moved, owned_by_victim);
    EXPECT_LE(static_cast<double>(moved) / kKeys, 2.0 / n) << n;
  }
}

TEST(HashRingTest, ReplicaSetsAreDisjointAndOwnerFirst) {
  const HashRing ring = MakeRing(6);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::vector<std::uint32_t> set = ring.ReplicaSet(k, 3);
    ASSERT_EQ(set.size(), 3u) << k;
    ASSERT_EQ(set[0], ring.OwnerOf(k)) << k;
    ASSERT_NE(set[0], set[1]) << k;
    ASSERT_NE(set[0], set[2]) << k;
    ASSERT_NE(set[1], set[2]) << k;
  }
}

TEST(HashRingTest, ReplicaSetClampsToMembership) {
  const HashRing ring = MakeRing(2);
  const std::vector<std::uint32_t> set = ring.ReplicaSet(42, 5);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_NE(set[0], set[1]);
}

TEST(HashRingTest, RejoinRestoresPlacement) {
  // Crash + recover: removing a machine and adding it back restores the exact
  // pre-crash ring, so recovery re-syncs onto the same arcs it owned before.
  HashRing ring = MakeRing(5);
  const std::uint64_t digest = ring.Digest();
  ring.RemoveMachine(2);
  EXPECT_NE(ring.Digest(), digest);
  ring.AddMachine(2);
  EXPECT_EQ(ring.Digest(), digest);
}

TEST(HashRingTest, LoadSpreadIsRoughlyBalanced) {
  // 64 vnodes keeps the max/mean ownership skew modest; this is the knob the
  // mesh leans on for the scaling gate (a 3x-overloaded member would cap the
  // whole mesh's throughput).
  const HashRing ring = MakeRing(8);
  std::vector<std::uint64_t> owned(8, 0);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ++owned[ring.OwnerOf(k)];
  }
  const double mean = static_cast<double>(kKeys) / 8;
  for (std::uint32_t m = 0; m < 8; ++m) {
    EXPECT_GT(owned[m], mean * 0.5) << m;
    EXPECT_LT(owned[m], mean * 1.8) << m;
  }
}

}  // namespace
}  // namespace hmesh
