// Tests for the clustered, replicated hash table (Figure 2 semantics).

#include "src/hcluster/clustered_table.h"

#include <atomic>
#include <string>

#include <gtest/gtest.h>

namespace hcluster {
namespace {

// Runs `fn` as a process on worker `w` and waits for it.
template <typename Fn>
void RunOn(ClusterRuntime& rt, WorkerId w, Fn fn) {
  std::atomic<bool> done{false};
  rt.Post(w, [&] {
    fn();
    done = true;
  });
  while (!done) {
    std::this_thread::yield();
  }
}

TEST(ClusteredTable, GetMissingReturnsNullopt) {
  ClusterRuntime rt(Topology{4, 2});
  ClusteredTable<int, int> table(&rt);
  RunOn(rt, 0, [&] { EXPECT_FALSE(table.Get(12345).has_value()); });
}

TEST(ClusteredTable, PutThenGetFromEveryCluster) {
  ClusterRuntime rt(Topology{8, 2});
  ClusteredTable<int, std::string> table(&rt);
  table.Put(7, "seven");
  for (WorkerId w = 0; w < 8; ++w) {
    RunOn(rt, w, [&] {
      auto v = table.Get(7);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, "seven");
    });
  }
}

TEST(ClusteredTable, RemoteGetReplicatesOnceThenHitsLocally) {
  ClusterRuntime rt(Topology{8, 2});
  ClusteredTable<int, int> table(&rt);
  table.Put(1, 100);
  const ClusterId home = table.home_cluster(1);
  // Pick a worker in a different cluster.
  const WorkerId remote = ((home + 1) % rt.topology().num_clusters()) * 2;
  RunOn(rt, remote, [&] {
    EXPECT_EQ(table.Get(1), 100);
    EXPECT_EQ(table.Get(1), 100);
    EXPECT_EQ(table.Get(1), 100);
  });
  EXPECT_EQ(table.replications(), 1u);
  EXPECT_GE(table.local_hits(rt.topology().cluster_of(remote)), 2u);
}

TEST(ClusteredTable, PutUpdatesAllReplicas) {
  ClusterRuntime rt(Topology{8, 2});
  ClusteredTable<int, int> table(&rt);
  table.Put(5, 1);
  // Replicate into every cluster.
  for (WorkerId w = 0; w < 8; w += 2) {
    RunOn(rt, w, [&] { EXPECT_EQ(table.Get(5), 1); });
  }
  // Global update: every cluster must observe the new value locally.
  table.Put(5, 2);
  for (WorkerId w = 0; w < 8; w += 2) {
    RunOn(rt, w, [&] { EXPECT_EQ(table.Get(5), 2); });
  }
}

TEST(ClusteredTable, ConcurrentReadersAcrossClusters) {
  ClusterRuntime rt(Topology{8, 2});
  ClusteredTable<int, int> table(&rt);
  for (int k = 0; k < 16; ++k) {
    table.Put(k, k * 10);
  }
  std::atomic<int> done{0};
  std::atomic<bool> wrong{false};
  for (WorkerId w = 0; w < 8; ++w) {
    rt.Post(w, [&table, &done, &wrong] {
      for (int k = 0; k < 16; ++k) {
        auto v = table.Get(k);
        if (!v.has_value() || *v != k * 10) {
          wrong = true;
        }
      }
      done.fetch_add(1);
    });
  }
  while (done.load() != 8) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(wrong.load());
}

TEST(ClusteredTable, WritersAndReadersConverge) {
  ClusterRuntime rt(Topology{4, 2});
  ClusteredTable<int, int> table(&rt);
  table.Put(9, 0);
  // Prime replicas everywhere.
  for (WorkerId w = 0; w < 4; w += 2) {
    RunOn(rt, w, [&] { (void)table.Get(9); });
  }
  std::atomic<int> done{0};
  rt.Post(0, [&] {
    for (int i = 1; i <= 20; ++i) {
      table.Put(9, i);
    }
    done.fetch_add(1);
  });
  rt.Post(2, [&] {
    int last = 0;
    for (int i = 0; i < 200; ++i) {
      auto v = table.Get(9);
      if (v.has_value()) {
        // Values move forward monotonically (single writer).
        EXPECT_GE(*v, last);
        last = *v;
      }
    }
    done.fetch_add(1);
  });
  while (done.load() != 2) {
    std::this_thread::yield();
  }
  RunOn(rt, 2, [&] { EXPECT_EQ(table.Get(9), 20); });
}

TEST(ClusteredTable, DropLocalEvictsReplicaButNotHomeCopy) {
  ClusterRuntime rt(Topology{4, 2});
  ClusteredTable<int, int> table(&rt);
  table.Put(3, 30);
  const ClusterId home = table.home_cluster(3);
  const ClusterId other = (home + 1) % rt.topology().num_clusters();
  RunOn(rt, other * 2, [&] {
    EXPECT_EQ(table.Get(3), 30);
    EXPECT_TRUE(table.DropLocal(3));   // evicts the local replica
    EXPECT_FALSE(table.DropLocal(3));  // already gone
    EXPECT_EQ(table.Get(3), 30);       // re-replicates from home
  });
  RunOn(rt, home * 2, [&] {
    EXPECT_FALSE(table.DropLocal(3));  // the home copy is authoritative
    EXPECT_EQ(table.Get(3), 30);
  });
  EXPECT_EQ(table.replications(), 2u);
}

TEST(ClusteredTable, WriteBroadcastUnderConcurrentReaderReservations) {
  // The Section 2.5 pessimistic path under real multi-cluster pressure:
  // writers broadcast new values while one reader per cluster continuously
  // replicates (exclusive shell + home reader reservation) and evicts, so
  // broadcasts keep colliding with reservations on every replica and must
  // retry.  Single writer per key, so per-reader observations of a key must
  // be monotone and the final value must win everywhere.
  ClusterRuntime rt(Topology{8, 2});
  const std::uint32_t n_clusters = rt.topology().num_clusters();
  ClusteredTable<int, int> table(&rt);
  constexpr int kKeys = 6;
  constexpr int kWrites = 60;
  for (int k = 0; k < kKeys; ++k) {
    table.Put(k, 0);
  }
  // Replicate everywhere so the first broadcasts fan out to all clusters.
  for (ClusterId c = 0; c < n_clusters; ++c) {
    RunOn(rt, c * 2, [&] {
      for (int k = 0; k < kKeys; ++k) {
        ASSERT_TRUE(table.Get(k).has_value());
      }
    });
  }

  std::atomic<int> done{0};
  std::atomic<bool> bad{false};
  // Two writers on different clusters own disjoint keys (even/odd).
  for (int wr = 0; wr < 2; ++wr) {
    rt.Post(static_cast<WorkerId>(wr * 2), [&table, &done, wr] {
      for (int i = 1; i <= kWrites; ++i) {
        for (int k = wr; k < kKeys; k += 2) {
          table.Put(k, i);
        }
      }
      done.fetch_add(1);
    });
  }
  // One reader per cluster keeps every replica churning through
  // reserve/fetch/evict cycles while the broadcasts land.
  for (ClusterId c = 0; c < n_clusters; ++c) {
    rt.Post(c * 2 + 1, [&table, &done, &bad] {
      int last[kKeys] = {};
      for (int round = 0; round < 40; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          auto v = table.Get(k);
          if (!v.has_value() || *v < last[k] || *v > kWrites) {
            bad = true;
          } else {
            last[k] = *v;
          }
          table.DropLocal(k);
        }
      }
      done.fetch_add(1);
    });
  }
  while (done.load() != 2 + static_cast<int>(n_clusters)) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(bad.load());
  // Convergence: every cluster sees the final value of every key locally.
  for (ClusterId c = 0; c < n_clusters; ++c) {
    RunOn(rt, c * 2, [&] {
      for (int k = 0; k < kKeys; ++k) {
        EXPECT_EQ(table.Get(k), kWrites) << "key " << k << " on cluster " << c;
      }
    });
  }
}

}  // namespace
}  // namespace hcluster
