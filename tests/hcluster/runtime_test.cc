// Tests for the native cluster runtime: routing, posting, blocking calls,
// cross-call deadlock freedom, and the replicated counter.

#include "src/hcluster/runtime.h"

#include <atomic>
#include <gtest/gtest.h>

#include "src/hcluster/replicated_counter.h"
#include "src/hcluster/topology.h"

namespace hcluster {
namespace {

TEST(Topology, ClusterAndPeerMath) {
  Topology t{16, 4};
  EXPECT_EQ(t.num_clusters(), 4u);
  EXPECT_EQ(t.cluster_of(0), 0u);
  EXPECT_EQ(t.cluster_of(7), 1u);
  EXPECT_EQ(t.cluster_of(15), 3u);
  EXPECT_EQ(t.peer_of(6, 3), 14u);  // 2nd of cluster 1 -> 2nd of cluster 3
  EXPECT_EQ(t.peer_of(0, 2), 8u);
  Topology odd{10, 4};
  EXPECT_EQ(odd.num_clusters(), 3u);
}

TEST(ClusterRuntime, PostRunsOnTargetWorker) {
  ClusterRuntime rt(Topology{4, 2});
  std::atomic<WorkerId> observed{ClusterRuntime::kNotAWorker};
  std::atomic<bool> done{false};
  rt.Post(3, [&] {
    observed = rt.current_worker();
    done = true;
  });
  while (!done) {
    std::this_thread::yield();
  }
  EXPECT_EQ(observed.load(), 3u);
}

TEST(ClusterRuntime, CallReturnsValueFromTarget) {
  ClusterRuntime rt(Topology{4, 2});
  const int result = rt.Call(2, [] { return 41 + 1; });
  EXPECT_EQ(result, 42);
}

TEST(ClusterRuntime, CallFromWorkerServicesOwnInbox) {
  // Worker 0's process calls worker 1, whose handler calls back into worker
  // 0's inbox... as a *handler post*, which worker 0 services while blocked.
  ClusterRuntime rt(Topology{2, 1});
  std::atomic<bool> done{false};
  std::atomic<bool> nested_ran{false};
  rt.Post(0, [&] {
    const int r = rt.Call(1, [&] {
      // Handler on worker 1: post (not call!) work back to worker 0.
      rt.PostHandler(0, [&] { nested_ran = true; });
      return 7;
    });
    // Wait until worker 0 (us) has run the posted handler: it happens inside
    // our own Call wait loop or right after.
    EXPECT_EQ(r, 7);
    done = true;
  });
  while (!done) {
    std::this_thread::yield();
  }
  while (!nested_ran) {
    std::this_thread::yield();
  }
  SUCCEED();
}

TEST(ClusterRuntime, CrossCallingProcessesDoNotDeadlock) {
  // Two processes on different workers call each other's workers at the same
  // time; each services its own inbox while waiting (the processor-as-
  // resource rule).
  ClusterRuntime rt(Topology{2, 1});
  std::atomic<int> done{0};
  for (WorkerId w = 0; w < 2; ++w) {
    rt.Post(w, [&rt, w, &done] {
      const int r = rt.Call(1 - w, [w] { return static_cast<int>(w); });
      EXPECT_EQ(r, static_cast<int>(w));
      done.fetch_add(1);
    });
  }
  while (done.load() != 2) {
    std::this_thread::yield();
  }
  SUCCEED();
}

TEST(ClusterRuntime, ManyConcurrentCallsComplete) {
  ClusterRuntime rt(Topology{4, 2});
  std::atomic<int> sum{0};
  std::atomic<int> done{0};
  for (WorkerId w = 0; w < 4; ++w) {
    rt.Post(w, [&rt, w, &sum, &done] {
      for (int i = 0; i < 50; ++i) {
        sum.fetch_add(rt.Call((w + 1) % 4, [i] { return i; }));
      }
      done.fetch_add(1);
    });
  }
  while (done.load() != 4) {
    std::this_thread::yield();
  }
  EXPECT_EQ(sum.load(), 4 * (49 * 50 / 2));
}

TEST(ClusterRuntime, QuiesceWaitsForPostedTasks) {
  ClusterRuntime rt(Topology{4, 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    rt.Post(i % 4, [&ran] { ran.fetch_add(1); });
  }
  rt.Quiesce();
  EXPECT_EQ(ran.load(), 20);
}

TEST(ClusterRuntime, DestroyWithCallsInFlightDrainsEverything) {
  // Destroying the runtime while worker processes are blocked in cross-worker
  // Calls must complete every call, not deadlock or drop queued tasks.  The
  // pre-drain destructor hung here: worker A waited in Call for worker B's
  // reply while B, having observed the stop flag, had already exited without
  // polling its inbox -- so join(A) never returned.
  std::atomic<int> ran{0};
  constexpr int kTasks = 32;
  {
    ClusterRuntime rt(Topology{4, 2});
    for (int i = 0; i < kTasks; ++i) {
      rt.Post(static_cast<WorkerId>(i % 4), [&rt, &ran, i] {
        const int r = rt.Call(static_cast<WorkerId>((i + 1) % 4), [i] { return i; });
        EXPECT_EQ(r, i);
        ran.fetch_add(1);
      });
    }
    // Destroy immediately: most of the calls are still queued or in flight.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ClusterRuntime, DestroyRunsWorkPostedByDrainingWork) {
  // Work posted *by* work that the destructor is draining is itself part of
  // the drain (the conservation counters chase the transitive closure).
  std::atomic<int> ran{0};
  {
    ClusterRuntime rt(Topology{2, 1});
    rt.Post(0, [&rt, &ran] {
      rt.Post(1, [&rt, &ran] {
        rt.PostHandler(0, [&ran] { ran.fetch_add(1); });
        ran.fetch_add(1);
      });
      ran.fetch_add(1);
    });
  }
  EXPECT_EQ(ran.load(), 3);
}

TEST(ReplicatedCounter, LocalAndTotal) {
  Topology t{8, 4};
  ReplicatedCounter counter(t);
  counter.Add(/*worker=*/0, 5);   // cluster 0
  counter.Add(/*worker=*/1, 2);   // cluster 0
  counter.Add(/*worker=*/5, 10);  // cluster 1
  EXPECT_EQ(counter.Local(0), 7);
  EXPECT_EQ(counter.Local(1), 10);
  EXPECT_EQ(counter.Total(), 17);
}

}  // namespace
}  // namespace hcluster
