// Native-backend tests for the halloc slab allocator: the typed arena
// wrapper, per-cluster ref ranges and depot steals, exhaustion behaviour,
// the shared-pool baseline it is benchmarked against, and the hprof depot
// site.  Model-checked interleaving coverage lives in
// tests/hcheck/halloc_hcheck_test.cc; simulated-NUMA locality coverage in
// tests/halloc/slab_sim_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "src/halloc/shared_pool.h"
#include "src/halloc/slab_allocator.h"
#include "src/halloc/slab_core.h"
#include "src/hlock/algo/native_backend.h"
#include "src/hprof/lock_site.h"

namespace {

using halloc::SlabAllocator;
using halloc::SlabConfig;

TEST(SlabAllocator, RoundTripsObjectsThroughTheArena) {
  SlabConfig cfg;
  cfg.objects_per_cluster = 8;
  cfg.magazine_size = 4;
  SlabAllocator<int> pool(/*num_clusters=*/1, cfg);
  EXPECT_EQ(pool.capacity(), 8u);

  std::set<int*> seen;
  std::vector<int*> held;
  for (int i = 0; i < 8; ++i) {
    int* p = pool.AllocFor(/*ctx_id=*/0);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "same object handed out twice";
    *p = i;
    held.push_back(p);
  }
  for (int* p : held) {
    pool.FreeFor(0, p);
  }
  // Freed objects come back; pointers stay inside the arena.
  int* again = pool.AllocFor(0);
  ASSERT_NE(again, nullptr);
  EXPECT_TRUE(seen.count(again) == 1);
  pool.FreeFor(0, again);

  const halloc::CacheStats total = pool.core().TotalCacheStats();
  EXPECT_EQ(total.allocs(), 9u);
  EXPECT_EQ(total.frees(), 9u);
  EXPECT_EQ(total.alloc_fail, 0u);
}

TEST(SlabAllocator, ExhaustionReturnsNullThenRecovers) {
  SlabConfig cfg;
  cfg.objects_per_cluster = 4;
  cfg.magazine_size = 2;
  SlabAllocator<int> pool(1, cfg);

  std::vector<int*> held;
  for (std::uint64_t i = 0; i < pool.capacity(); ++i) {
    int* p = pool.AllocFor(0);
    ASSERT_NE(p, nullptr);
    held.push_back(p);
  }
  EXPECT_EQ(pool.AllocFor(0), nullptr);
  EXPECT_EQ(pool.AllocFor(0), nullptr);
  EXPECT_EQ(pool.core().TotalCacheStats().alloc_fail, 2u);

  pool.FreeFor(0, held.back());
  held.pop_back();
  int* p = pool.AllocFor(0);
  EXPECT_NE(p, nullptr);
}

// Refs are partitioned into per-cluster ranges: a cluster drains its own
// range first (primed magazine, then lazy carve) and only then steals from
// the other cluster's uncarved tail.  The victim cluster still gets its
// primed magazine, and the pool as a whole still hands out exactly
// `capacity` objects before failing.
TEST(SlabAllocator, OwnRangeFirstThenDepotSteal) {
  SlabConfig cfg;
  cfg.objects_per_cluster = 8;
  cfg.magazine_size = 4;
  SlabAllocator<int> pool(/*num_clusters=*/2, cfg);
  pool.RegisterCtx(0, 0);
  pool.RegisterCtx(1, 1);
  const auto& core = pool.core();

  // Cluster 0 allocates 12: its own 8, then 4 stolen from cluster 1's range.
  std::vector<int*> held;
  for (int i = 0; i < 12; ++i) {
    int* p = pool.AllocFor(0);
    ASSERT_NE(p, nullptr);
    const std::uint64_t ref = static_cast<std::uint64_t>(p - &pool.object(1)) + 1;
    EXPECT_EQ(core.HomeClusterOf(ref), i < 8 ? 0u : 1u) << "alloc #" << i;
    held.push_back(p);
  }
  EXPECT_GE(core.depot_stats().steals, 1u);

  // Cluster 1 still owns its primed magazine: 4 more allocs, all home-range.
  for (int i = 0; i < 4; ++i) {
    int* p = pool.AllocFor(1);
    ASSERT_NE(p, nullptr);
    const std::uint64_t ref = static_cast<std::uint64_t>(p - &pool.object(1)) + 1;
    EXPECT_EQ(core.HomeClusterOf(ref), 1u);
    held.push_back(p);
  }
  // 16 of 16 live: exhausted for everyone.
  EXPECT_EQ(pool.AllocFor(1), nullptr);
  EXPECT_EQ(pool.AllocFor(0), nullptr);
  for (int* p : held) {
    pool.FreeFor(0, p);
  }
}

TEST(SlabAllocator, ThreadedAllocFreeSmoke) {
  SlabConfig cfg;
  cfg.objects_per_cluster = 64;
  cfg.magazine_size = 8;
  auto pool = std::make_unique<SlabAllocator<std::uint64_t>>(/*num_clusters=*/2, cfg);
  constexpr int kIters = 2000;
  auto worker = [&pool](std::uint32_t cluster) {
    pool->RegisterThread(cluster);
    for (int i = 0; i < kIters; ++i) {
      std::uint64_t* p = pool->Alloc();
      // One live object per thread against 128 capacity: never exhausts.
      ASSERT_NE(p, nullptr);
      *p = cluster;
      pool->Free(p);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  const halloc::CacheStats total = pool->core().TotalCacheStats();
  EXPECT_EQ(total.allocs(), 2u * kIters);
  EXPECT_EQ(total.frees(), 2u * kIters);
  EXPECT_EQ(total.alloc_fail, 0u);
}

// The shared-free-list baseline the slab design replaces (and that
// bench/alloc_scaling races it against): same ref contract, one global
// stack.
TEST(SharedPool, BaselineRefContract) {
  using B = hlock::algo::NativeBackend<hlock::StdPlatform>;
  B backend(/*procs_per_cluster=*/1);
  halloc::SharedPoolCore<B> pool(&backend, /*capacity=*/3);
  typename B::Ctx ctx{0};

  // Low refs first, same as the slab core's carve order.
  EXPECT_EQ(pool.Alloc(ctx).Get(), 1u);
  EXPECT_EQ(pool.Alloc(ctx).Get(), 2u);
  EXPECT_EQ(pool.Alloc(ctx).Get(), 3u);
  EXPECT_EQ(pool.Alloc(ctx).Get(), halloc::SharedPoolCore<B>::kNil);
  EXPECT_EQ(pool.fails(), 1u);
  pool.Free(ctx, 2).Get();
  EXPECT_EQ(pool.Alloc(ctx).Get(), 2u);  // LIFO
  EXPECT_EQ(pool.allocs(), 4u);
  EXPECT_EQ(pool.frees(), 1u);
}

// Depot trips show up on an attached hprof site like any other lock:
// acquisitions counted, hold times recorded, acquirer attributed to its true
// cluster for the handoff matrix.
TEST(SlabAllocator, DepotSiteRecordsAcquisitionsWithClusterAttribution) {
  SlabConfig cfg;
  cfg.objects_per_cluster = 8;
  cfg.magazine_size = 2;
  SlabAllocator<int> pool(/*num_clusters=*/2, cfg);
  pool.RegisterCtx(0, 0);
  pool.RegisterCtx(1, 1);
  hprof::LockSiteStats site("test/depot", /*procs_per_cluster=*/1);
  pool.set_depot_site(&site);

  // Drain past each cluster's primed magazine so both take depot trips.
  std::vector<int*> held;
  for (int i = 0; i < 6; ++i) {
    held.push_back(pool.AllocFor(0));
    held.push_back(pool.AllocFor(1));
  }
  for (int* p : held) {
    ASSERT_NE(p, nullptr);
  }
  EXPECT_GE(site.acquisitions(), 2u);
  EXPECT_EQ(site.hold().count(), site.acquisitions());
  ASSERT_EQ(site.by_cluster().size(), 2u);
  EXPECT_GE(site.by_cluster().at(0).acquisitions, 1u);
  EXPECT_GE(site.by_cluster().at(1).acquisitions, 1u);
  // Sequential single-thread trips: every owner change is a cross-cluster
  // handoff in the matrix (clusters 0 and 1 alternate).
  const std::uint64_t transitions = site.acquisitions() - 1;
  EXPECT_EQ(site.handoffs(hprof::Handoff::kSameProcessor) +
                site.handoffs(hprof::Handoff::kSameCluster) +
                site.handoffs(hprof::Handoff::kCrossCluster),
            transitions);
  EXPECT_GE(site.handoffs(hprof::Handoff::kCrossCluster), 1u);
  for (int* p : held) {
    pool.FreeFor(0, p);
  }
}

}  // namespace
