// Locality tests for the slab core on the simulated HECTOR machine: the
// whole point of the per-cluster design is that the allocation fast path
// touches only words homed at the allocating processor's own station, so the
// sim's per-processor loc_* counters must show zero ring crossings for
// primed-magazine allocs and frees, and ring crossings exactly when a depot
// trip visits the depot words homed at module 0.
//
// Topology: default MachineConfig (4 stations x 4 modules, 16 processors),
// SimBackend's station-as-cluster map.  The core homes cluster c's cache and
// magazine words at the first processor-memory module of station c, and all
// depot words at cfg.depot_home = module 0.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/halloc/slab_core.h"
#include "src/hsim/engine.h"
#include "src/hsim/locks/sim_backend.h"
#include "src/hsim/machine.h"
#include "src/hsim/task.h"

namespace {

using Core = halloc::SlabAllocatorCore<hsim::SimBackend>;

hsim::Task<void> AllocN(hsim::Processor* p, Core* core, int n,
                        std::vector<std::uint64_t>* out) {
  for (int i = 0; i < n; ++i) {
    out->push_back(co_await core->Alloc(*p));
  }
}

hsim::Task<void> FreeAll(hsim::Processor* p, Core* core,
                         const std::vector<std::uint64_t>* refs) {
  for (std::uint64_t ref : *refs) {
    co_await core->Free(*p, ref);
  }
}

struct SimFixture {
  hsim::Engine engine;
  hsim::Machine machine;
  hsim::SimBackend backend;
  Core core;

  explicit SimFixture(const halloc::SlabConfig& cfg)
      : machine(&engine, hsim::MachineConfig{}),
        backend(&machine),
        core(&backend, cfg) {}
};

halloc::SlabConfig SmallConfig() {
  halloc::SlabConfig cfg;
  cfg.objects_per_cluster = 8;
  cfg.magazine_size = 4;
  return cfg;
}

// A processor on station 0 allocating from its primed magazine touches only
// module-0-homed words: no ring crossings, and the handed-out refs belong to
// its own cluster's range.
TEST(SlabSim, FastPathIsRingFreeOnHomeStation) {
  SimFixture f(SmallConfig());
  ASSERT_EQ(f.backend.NumClusters(), 4u);
  hsim::Processor& p = f.machine.processor(0);
  const hsim::OpStats before = p.stats();
  std::vector<std::uint64_t> refs;
  f.engine.Spawn(AllocN(&p, &f.core, 4, &refs));
  f.engine.RunUntilIdle();
  const hsim::OpStats delta = p.stats() - before;
  for (std::uint64_t ref : refs) {
    ASSERT_NE(ref, Core::kNil);
    EXPECT_EQ(f.core.HomeClusterOf(ref), 0u);
  }
  EXPECT_EQ(delta.loc_ring, 0u) << "primed-magazine alloc crossed the ring";
  EXPECT_GT(delta.loc_local, 0u);
  EXPECT_EQ(f.core.cache_stats(0).alloc_fast, 4u);
}

// Same property away from the depot's station: processor 4 (station 1) works
// against words homed at module 4, so its fast-path allocs and frees are
// ring-free too -- this is exactly what a single shared free list homed at
// module 0 cannot provide.
TEST(SlabSim, RemoteStationFastPathIsAlsoRingFree) {
  SimFixture f(SmallConfig());
  hsim::Processor& p = f.machine.processor(4);
  ASSERT_EQ(f.backend.ClusterOfCtx(p.id()), 1u);
  const hsim::OpStats before = p.stats();
  std::vector<std::uint64_t> refs;
  f.engine.Spawn(AllocN(&p, &f.core, 4, &refs));
  f.engine.RunUntilIdle();
  f.engine.Spawn(FreeAll(&p, &f.core, &refs));
  f.engine.RunUntilIdle();
  const hsim::OpStats delta = p.stats() - before;
  for (std::uint64_t ref : refs) {
    ASSERT_NE(ref, Core::kNil);
    EXPECT_EQ(f.core.HomeClusterOf(ref), 1u);
  }
  EXPECT_EQ(delta.loc_ring, 0u) << "station-1 alloc/free cycle crossed the ring";
  EXPECT_EQ(f.core.cache_stats(1).alloc_fast, 4u);
  EXPECT_EQ(f.core.cache_stats(1).free_fast, 4u);
}

// Draining past the primed magazine forces a depot trip, and the depot words
// live at module 0: a station-1 processor's trip must cross the ring.  The
// carved refs still come from its own range, so only the *depot metadata*
// travels -- the objects stay home.
TEST(SlabSim, DepotTripCrossesRingButCarvesHomeRefs) {
  SimFixture f(SmallConfig());
  hsim::Processor& p = f.machine.processor(4);
  const hsim::OpStats before = p.stats();
  std::vector<std::uint64_t> refs;
  f.engine.Spawn(AllocN(&p, &f.core, 5, &refs));
  f.engine.RunUntilIdle();
  const hsim::OpStats delta = p.stats() - before;
  for (std::uint64_t ref : refs) {
    ASSERT_NE(ref, Core::kNil);
    EXPECT_EQ(f.core.HomeClusterOf(ref), 1u);
  }
  EXPECT_GT(delta.loc_ring, 0u) << "depot trip should have visited module 0";
  EXPECT_EQ(f.core.cache_stats(1).alloc_depot, 1u);
  EXPECT_EQ(f.core.depot_stats().carves, 1u);
}

// Every station allocating concurrently: refs stay disjoint (the debug
// double-alloc tracking would abort otherwise), no grant exceeds capacity,
// and every request is either granted or counted as a refusal.  (Exactly
// `capacity` grants is NOT guaranteed: a final carve can strand a leftover
// round in a finished cluster's loaded magazine -- the same part-full-
// magazine stranding the file comment in slab_core.h documents.)
TEST(SlabSim, AllStationsDrainThePoolDisjointly) {
  halloc::SlabConfig cfg;
  cfg.objects_per_cluster = 4;
  cfg.magazine_size = 2;
  SimFixture f(cfg);
  const std::uint32_t clusters = f.backend.NumClusters();
  std::vector<std::vector<std::uint64_t>> refs(clusters);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    // First processor of each station allocates the cluster's whole range
    // plus one: the +1 allocs compete for whatever uncarved tails remain.
    f.engine.Spawn(AllocN(&f.machine.processor(c * 4), &f.core,
                          static_cast<int>(cfg.objects_per_cluster) + 1, &refs[c]));
  }
  f.engine.RunUntilIdle();
  std::vector<bool> live(f.core.capacity() + 1, false);
  std::uint64_t granted = 0;
  for (std::uint32_t c = 0; c < clusters; ++c) {
    for (std::uint64_t ref : refs[c]) {
      if (ref == Core::kNil) {
        continue;
      }
      ++granted;
      EXPECT_FALSE(live[ref]) << "ref " << ref << " granted twice";
      live[ref] = true;
    }
  }
  // 20 requests against 16 objects.
  EXPECT_LE(granted, f.core.capacity());
  EXPECT_GE(granted, 2ull * clusters) << "primed fast-path allocs cannot fail";
  const halloc::CacheStats total = f.core.TotalCacheStats();
  EXPECT_EQ(total.allocs(), granted);
  EXPECT_EQ(granted + total.alloc_fail, 5ull * clusters);
}

}  // namespace
