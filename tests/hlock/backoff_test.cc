// Tests for the exponential backoff helper, in particular the cap behaviour:
// the per-round spin count must clamp to max_spins exactly, not overshoot to
// the next power of two (min=4, max=1000 used to spin 1024 at the cap).

#include "src/hlock/backoff.h"

#include <gtest/gtest.h>

namespace {

TEST(BackoffTest, DoublesFromFloorToCap) {
  hlock::Backoff backoff(/*min_spins=*/4, /*max_spins=*/64);
  EXPECT_EQ(backoff.spins(), 4u);
  backoff.Pause();
  EXPECT_EQ(backoff.spins(), 8u);
  backoff.Pause();
  EXPECT_EQ(backoff.spins(), 16u);
  backoff.Pause();
  backoff.Pause();
  EXPECT_EQ(backoff.spins(), 64u);
  backoff.Pause();
  EXPECT_EQ(backoff.spins(), 64u);  // stays at the cap
  EXPECT_EQ(backoff.rounds(), 5u);
}

TEST(BackoffTest, ClampsToNonPowerOfTwoCap) {
  hlock::Backoff backoff(/*min_spins=*/4, /*max_spins=*/1000);
  for (int i = 0; i < 16; ++i) {
    backoff.Pause();
    EXPECT_LE(backoff.spins(), 1000u) << "overshot the cap on round " << i;
  }
  EXPECT_EQ(backoff.spins(), 1000u);
}

TEST(BackoffTest, ResetRestoresFloor) {
  hlock::Backoff backoff(/*min_spins=*/8, /*max_spins=*/100);
  for (int i = 0; i < 8; ++i) {
    backoff.Pause();
  }
  EXPECT_EQ(backoff.spins(), 100u);
  backoff.Reset();
  EXPECT_EQ(backoff.spins(), 8u);
  backoff.Pause();
  EXPECT_EQ(backoff.spins(), 16u);
  // rounds() is cumulative across Reset (it counts lifetime pauses).
  EXPECT_EQ(backoff.rounds(), 9u);
}

TEST(BackoffTest, FloorAboveCapIsClampedDown) {
  hlock::Backoff backoff(/*min_spins=*/512, /*max_spins=*/100);
  EXPECT_EQ(backoff.spins(), 100u);
  backoff.Pause();
  EXPECT_EQ(backoff.spins(), 100u);
  backoff.Reset();
  EXPECT_EQ(backoff.spins(), 100u);
}

}  // namespace
