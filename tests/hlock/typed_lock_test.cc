// Typed property suite: every native BasicLockable in hlock is put through
// the same mutual-exclusion, try_lock, and guard-compatibility checks.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hlock/mcs_locks.h"
#include "src/hlock/mcs_try_lock.h"
#include "src/hlock/spin_locks.h"
#include "src/hlock/spin_then_block.h"

namespace hlock {
namespace {

template <typename T>
class TypedLockTest : public ::testing::Test {};

using LockTypes =
    ::testing::Types<TasSpinLock, TtasSpinLock, BackoffSpinLock, TicketLock, McsH1Lock,
                     McsH2Lock, McsTryV1Lock, McsTryV2Lock, SpinThenBlockLock>;
TYPED_TEST_SUITE(TypedLockTest, LockTypes);

TYPED_TEST(TypedLockTest, MutualExclusion) {
  TypeParam lock;
  std::int64_t counter = 0;
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  constexpr int kThreads = 3;
  constexpr int kIters = 1200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        if (inside.fetch_add(1, std::memory_order_relaxed) != 0) {
          overlap.store(true);
        }
        counter = counter + 1;
        inside.fetch_sub(1, std::memory_order_relaxed);
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TYPED_TEST(TypedLockTest, LockGuardRoundTrip) {
  TypeParam lock;
  for (int i = 0; i < 100; ++i) {
    std::lock_guard<TypeParam> guard(lock);
  }
  SUCCEED();
}

TYPED_TEST(TypedLockTest, SequentialReacquisition) {
  // The H-variant rest-state invariant (and every other lock's basic
  // soundness): one thread can acquire/release indefinitely.
  TypeParam lock;
  for (int i = 0; i < 5000; ++i) {
    lock.lock();
    lock.unlock();
  }
  SUCCEED();
}

// try_lock checks, only for the types that have one with try semantics on a
// free lock (all but McsTryV1Lock, whose "try" is LockFromInterrupt).
template <typename T>
class TypedTryLockTest : public ::testing::Test {};

using TryLockTypes = ::testing::Types<TasSpinLock, TtasSpinLock, BackoffSpinLock, TicketLock,
                                      McsH1Lock, McsH2Lock, McsTryV2Lock, SpinThenBlockLock>;
TYPED_TEST_SUITE(TypedTryLockTest, TryLockTypes);

TYPED_TEST(TypedTryLockTest, TryLockFreeSucceedsHeldFails) {
  TypeParam lock;
  ASSERT_TRUE(lock.try_lock());
  std::atomic<bool> second{true};
  // Probe from another thread (some locks are per-thread-node based, so the
  // same thread probing itself is not the interesting case).
  std::thread t([&] { second = lock.try_lock(); });
  t.join();
  EXPECT_FALSE(second.load());
  lock.unlock();
  std::atomic<bool> third{false};
  std::thread t2([&] {
    if (lock.try_lock()) {
      third = true;
      lock.unlock();
    }
  });
  t2.join();
  EXPECT_TRUE(third.load());
}

}  // namespace
}  // namespace hlock
