// Tests for the software interrupt gate and its deferred-work queue.

#include "src/hlock/soft_irq_gate.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hlock {
namespace {

TEST(SoftIrqGate, OpenGateRunsWorkOnPoll) {
  SoftIrqGate gate;
  int ran = 0;
  gate.Post([&] { ++ran; });
  EXPECT_EQ(ran, 0);  // posted work never runs inline
  gate.Poll();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(gate.executed(), 1u);
}

TEST(SoftIrqGate, ClosedGateDefersUntilExit) {
  SoftIrqGate gate;
  int ran = 0;
  gate.Enter();
  gate.Post([&] { ++ran; });
  gate.Poll();  // gate closed: nothing runs
  EXPECT_EQ(ran, 0);
  gate.Exit();  // fully open: drain
  EXPECT_EQ(ran, 1);
}

TEST(SoftIrqGate, NestedRegionsDrainOnlyAtOutermostExit) {
  SoftIrqGate gate;
  int ran = 0;
  gate.Enter();
  gate.Enter();
  gate.Post([&] { ++ran; });
  gate.Exit();
  EXPECT_EQ(ran, 0);  // still one level closed
  gate.Exit();
  EXPECT_EQ(ran, 1);
}

TEST(SoftIrqGate, RegionGuardIsRaii) {
  SoftIrqGate gate;
  int ran = 0;
  {
    SoftIrqGate::Region region(gate);
    gate.Post([&] { ++ran; });
    EXPECT_FALSE(!gate.closed());
    EXPECT_EQ(ran, 0);
  }
  EXPECT_EQ(ran, 1);
}

TEST(SoftIrqGate, WorkRunsInArrivalOrder) {
  // The deferred queue preserves arrival order: this is the fairness property
  // that retrying TryLock lacks (Section 3.2).
  SoftIrqGate gate;
  std::vector<int> order;
  gate.Enter();
  for (int i = 0; i < 8; ++i) {
    gate.Post([&order, i] { order.push_back(i); });
  }
  gate.Exit();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SoftIrqGate, CrossThreadPostsAreDelivered) {
  SoftIrqGate gate;
  std::atomic<int> posted{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  std::atomic<int> ran{0};
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        gate.Post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        posted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Owner polls concurrently until all work is in and executed.
  while (posted.load() < kProducers * kPerProducer ||
         ran.load() < kProducers * kPerProducer) {
    gate.Poll();
    std::this_thread::yield();
  }
  for (auto& p : producers) {
    p.join();
  }
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
  EXPECT_EQ(gate.executed(), static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TEST(SoftIrqGate, PendingWorkDiscardedOnDestruction) {
  int ran = 0;
  {
    SoftIrqGate gate;
    gate.Enter();
    gate.Post([&] { ++ran; });
    // Destroyed with the gate closed: work is discarded, not leaked.
  }
  EXPECT_EQ(ran, 0);
}

}  // namespace
}  // namespace hlock
