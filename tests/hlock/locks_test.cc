// Property tests for the native locks: mutual exclusion, progress, and
// variant-specific behaviour.  Thread counts are kept modest and all spin
// loops yield at their backoff cap, so these run correctly (if slowly) even
// on a single-core host.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hlock/mcs_locks.h"
#include "src/hlock/spin_locks.h"
#include "src/hprof/lock_site.h"

namespace hlock {
namespace {

// Generic mutual-exclusion stress: `threads` threads each perform `iters`
// critical sections incrementing a plain (non-atomic) counter; any lost
// update or overlap proves a locking bug.
template <typename Lock>
void MutualExclusionStress(Lock& lock, int threads, int iters) {
  std::int64_t counter = 0;
  std::atomic<int> overlap{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        lock.lock();
        if (overlap.fetch_add(1, std::memory_order_relaxed) != 0) {
          overlapped.store(true, std::memory_order_relaxed);
        }
        counter = counter + 1;
        overlap.fetch_sub(1, std::memory_order_relaxed);
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(counter, static_cast<std::int64_t>(threads) * iters);
}

constexpr int kThreads = 4;
constexpr int kIters = 2000;

TEST(NativeLocks, TasMutualExclusion) {
  TasSpinLock lock;
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NativeLocks, TtasMutualExclusion) {
  TtasSpinLock lock;
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NativeLocks, BackoffMutualExclusion) {
  BackoffSpinLock lock;
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NativeLocks, TicketMutualExclusion) {
  TicketLock lock;
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NativeLocks, McsH1MutualExclusion) {
  McsH1Lock lock;
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NativeLocks, McsH2MutualExclusion) {
  McsH2Lock lock;
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NativeLocks, ClassicMcsMutualExclusion) {
  McsLock lock;
  std::int64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        McsLock::QNode node;
        lock.lock(node);
        counter = counter + 1;
        lock.unlock(node);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(NativeLocks, UncontendedLockUnlockIsReentrantSafeSequence) {
  // A single thread can acquire and release arbitrarily often (the H1/H2
  // rest-state invariant must be restored every time).
  McsH2Lock lock;
  for (int i = 0; i < 10000; ++i) {
    lock.lock();
    lock.unlock();
  }
  SUCCEED();
}

TEST(NativeLocks, H2ReportsRepairsUnderContention) {
  // Deterministic contention: a waiter enqueues while we hold the lock, so
  // our release must find a successor and repair the queue (H2 swaps nil in
  // unconditionally).
  McsH2Lock lock;
  lock.lock();
  std::atomic<bool> about_to_enqueue{false};
  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    about_to_enqueue.store(true);
    lock.lock();
    lock.unlock();
    waiter_done.store(true);
  });
  while (!about_to_enqueue.load()) {
    std::this_thread::yield();
  }
  // Give the waiter ample time to swap itself onto the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
  EXPECT_GT(lock.repairs(), 0u);
}

TEST(NativeLocks, H1RarelyRepairsUncontended) {
  McsH1Lock lock;
  for (int i = 0; i < 1000; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_EQ(lock.repairs(), 0u);
}

TEST(NativeLocks, TryLockOnFreeLockSucceeds) {
  McsH2Lock lock;
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
  TasSpinLock tas;
  EXPECT_TRUE(tas.try_lock());
  EXPECT_FALSE(tas.try_lock());
  tas.unlock();
}

TEST(NativeLocks, LockGuardCompatibility) {
  McsH2Lock lock;
  {
    std::lock_guard<McsH2Lock> guard(lock);
  }
  TicketLock ticket;
  {
    std::lock_guard<TicketLock> guard(ticket);
  }
  SUCCEED();
}

TEST(NativeLocks, TicketTryLockFailsWhileHeld) {
  TicketLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// Profiling hooks on the native locks: counts reconcile with the work done,
// and mutual exclusion is unaffected (the stress helper asserts it).
TEST(NativeLocks, ProfiledTtasRecordsEveryAcquisition) {
  hprof::LockSiteStats site("native/ttas");
  TtasSpinLock lock;
  lock.set_site(&site);
  MutualExclusionStress(lock, kThreads, kIters);
  EXPECT_EQ(site.acquisitions(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(site.hold().count(), site.acquisitions());
  EXPECT_EQ(site.wait().count(), site.acquisitions());
}

TEST(NativeLocks, ProfiledMcsH2RecordsContentionAndHandoffs) {
  hprof::LockSiteStats site("native/mcs-h2");
  McsH2Lock lock;
  lock.set_site(&site);
  MutualExclusionStress(lock, kThreads, kIters);
  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(site.acquisitions(), total);
  EXPECT_EQ(site.hold().count(), total);
  // Every owner transition is classified somewhere in the matrix.
  EXPECT_EQ(site.handoffs(hprof::Handoff::kSameProcessor) +
                site.handoffs(hprof::Handoff::kSameCluster) +
                site.handoffs(hprof::Handoff::kCrossCluster),
            total - 1);
}

}  // namespace
}  // namespace hlock
