// Tests for the hybrid coarse-grain / reserve-bit table (Figure 1b) and its
// fine-grained and global-lock baselines.

#include "src/hlock/hybrid_table.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hlock/fine_table.h"
#include "src/hprof/lock_site.h"

namespace hlock {
namespace {

TEST(HybridTable, AcquireCreatesAndProtects) {
  HybridTable<int, std::string> table;
  {
    auto guard = table.Acquire(7);
    ASSERT_TRUE(guard);
    guard.value() = "seven";
  }
  EXPECT_EQ(table.Peek(7), "seven");
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.Peek(8).has_value());
}

TEST(HybridTable, TryAcquireFailsWhileReserved) {
  HybridTable<int, int> table;
  auto guard = table.Acquire(1);
  ASSERT_TRUE(guard);
  // Handler-context probe from another thread: must fail, not wait.
  std::atomic<bool> failed{false};
  std::thread t([&] { failed = !table.TryAcquire(1); });
  t.join();
  EXPECT_TRUE(failed.load());
  guard.Release();
  auto second = table.TryAcquire(1);
  EXPECT_TRUE(second);
}

TEST(HybridTable, ReadersShareWritersExclude) {
  HybridTable<int, int> table;
  {
    auto w = table.Acquire(5);
    w.value() = 50;
  }
  auto r1 = table.AcquireShared(5);
  auto r2 = table.AcquireShared(5);
  ASSERT_TRUE(r1);
  ASSERT_TRUE(r2);
  EXPECT_EQ(r1.value(), 50);
  EXPECT_EQ(r2.value(), 50);
  // An exclusive probe must fail while readers hold the entry.
  EXPECT_FALSE(table.TryAcquire(5));
  r1.Release();
  EXPECT_FALSE(table.TryAcquire(5));
  r2.Release();
  EXPECT_TRUE(table.TryAcquire(5));
}

TEST(HybridTable, TryAcquireSharedFailsOnExclusive) {
  HybridTable<int, int> table;
  auto w = table.Acquire(3);
  EXPECT_FALSE(table.TryAcquireShared(3));
  w.Release();
  EXPECT_TRUE(table.TryAcquireShared(3));
}

TEST(HybridTable, EraseRefusesReservedEntries) {
  HybridTable<int, int> table;
  auto guard = table.Acquire(9);
  EXPECT_FALSE(table.Erase(9));  // reserved: handler must retry
  guard.Release();
  EXPECT_TRUE(table.Erase(9));
  EXPECT_FALSE(table.Erase(9));  // already gone
  EXPECT_EQ(table.size(), 0u);
}

TEST(HybridTable, EntriesAreRecycledTypeStably) {
  HybridTable<int, int> table(4);
  for (int round = 0; round < 100; ++round) {
    auto guard = table.Acquire(round);
    guard.value() = round;
    guard.Release();
    EXPECT_TRUE(table.Erase(round));
  }
  EXPECT_EQ(table.size(), 0u);
}

TEST(HybridTable, ExclusiveSerializesConcurrentMutators) {
  // Several threads increment the same entry under exclusive reservation;
  // updates must not be lost.  The value is a plain int: the reserve word is
  // what makes this safe.
  HybridTable<int, int> table;
  constexpr int kThreads = 4;
  constexpr int kIters = 800;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto guard = table.Acquire(42);
        guard.value() = guard.value() + 1;
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(table.Peek(42), kThreads * kIters);
}

TEST(HybridTable, IndependentKeysProceedConcurrently) {
  // One thread holds key A's reservation for a long time; another thread's
  // operations on key B complete meanwhile (the coarse lock is not held
  // across element holds).
  HybridTable<int, int> table;
  std::atomic<bool> b_done{false};
  auto a_guard = table.Acquire(1);  // long hold
  std::thread t([&] {
    for (int i = 0; i < 100; ++i) {
      auto guard = table.Acquire(2);
      guard.value() = guard.value() + 1;
    }
    b_done = true;
  });
  t.join();
  EXPECT_TRUE(b_done.load());
  EXPECT_EQ(table.Peek(2), 100);
  a_guard.Release();
}

TEST(HybridTable, WaiterAcquiresAfterHolderReleases) {
  HybridTable<int, int> table;
  auto holder = table.Acquire(11);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto guard = table.Acquire(11);  // spins on the reserve word
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load());
  holder.Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(HybridTable, MoveSemanticsOfGuards) {
  HybridTable<int, int> table;
  auto a = table.Acquire(1);
  auto b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b);
  b.Release();
  EXPECT_TRUE(table.TryAcquire(1));
}

// --- baselines ---------------------------------------------------------------

TEST(FineTable, BasicAndConcurrent) {
  FineTable<int, int> table;
  {
    auto guard = table.Acquire(1);
    guard.value() = 10;
  }
  EXPECT_EQ(table.Peek(1), 10);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        auto guard = table.Acquire(7);
        guard.value() = guard.value() + 1;
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(table.Peek(7), 2000);
}

TEST(GlobalTable, BasicAndConcurrent) {
  GlobalTable<int, int> table;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        table.With(3, [](int& v) { v = v + 1; });
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(table.Peek(3), 2000);
}

TEST(HybridTable, ReserveSiteRecordsExclusiveReservations) {
  hprof::LockSiteStats site("table/reserve");
  HybridTable<int, int> table;
  table.set_reserve_site(&site);
  {
    auto guard = table.Acquire(1);  // uncontended reserve
    guard.value() = 10;
  }
  {
    auto a = table.Acquire(1);
    auto b = table.TryAcquire(2);  // concurrent exclusive holds both record
    ASSERT_TRUE(b);
  }
  EXPECT_EQ(site.acquisitions(), 3u);
  EXPECT_EQ(site.hold().count(), 3u);
  // TryAcquire on a reserved entry fails without recording an acquisition.
  {
    auto held = table.Acquire(3);
    EXPECT_FALSE(table.TryAcquire(3));
  }
  EXPECT_EQ(site.acquisitions(), 4u);
}

}  // namespace
}  // namespace hlock
