// Tests for the two TryLock variants (Section 3.2), including the starvation
// property the paper discovered: a true TryLock against a saturated queue
// lock essentially never sees the lock free, because releases hand the lock
// directly to a queued waiter.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hlock/mcs_try_lock.h"

namespace hlock {
namespace {

TEST(McsTryV1, BasicLockUnlock) {
  McsTryV1Lock lock;
  std::int64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 4000);
}

TEST(McsTryV1, InterruptAcquireFailsOnlyWhenSelfHolds) {
  // The flag detects "I interrupted my own lock code": LockFromInterrupt on
  // the same thread while the lock is held by that thread must fail...
  McsTryV1Lock lock;
  lock.lock();
  EXPECT_FALSE(lock.LockFromInterrupt());
  lock.unlock();
  // ...and succeed when the thread holds nothing.
  EXPECT_TRUE(lock.LockFromInterrupt());
  lock.unlock();
}

TEST(McsTryV2, BasicLockUnlockStress) {
  McsTryV2Lock lock;
  std::int64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 1500; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 6000);
}

TEST(McsTryV2, TryLockSucceedsWhenFree) {
  McsTryV2Lock lock;
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(McsTryV2, TryLockFailsWhenHeldAndNodeIsReclaimed) {
  McsTryV2Lock lock;
  lock.lock();
  std::atomic<bool> failed{false};
  std::thread t([&] { failed = !lock.try_lock(); });
  t.join();
  EXPECT_TRUE(failed.load());
  // The abandoned node is reclaimed by our release.
  lock.unlock();
  EXPECT_EQ(lock.abandoned_nodes_reclaimed(), 1u);
  // The lock still works.
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(McsTryV2, ReleaseSkipsChainsOfAbandonedNodes) {
  McsTryV2Lock lock;
  lock.lock();
  // Several failed try_locks pile abandoned nodes into the queue.
  for (int i = 0; i < 5; ++i) {
    std::thread t([&] { EXPECT_FALSE(lock.try_lock()); });
    t.join();
  }
  // A real waiter queues behind them.
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    lock.lock();
    acquired = true;
    lock.unlock();
  });
  // Give the waiter time to enqueue behind the garbage.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.unlock();  // must reclaim all 5 abandoned nodes and grant the waiter
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(lock.abandoned_nodes_reclaimed(), 5u);
}

TEST(McsTryV2, MixedLockAndTryLockStress) {
  McsTryV2Lock lock;
  std::int64_t counter = 0;
  std::atomic<std::uint64_t> try_successes{0};
  std::atomic<std::uint64_t> try_failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        if (t % 2 == 0) {
          lock.lock();
          counter = counter + 1;
          lock.unlock();
        } else {
          if (lock.try_lock()) {
            counter = counter + 1;
            lock.unlock();
            try_successes.fetch_add(1);
          } else {
            try_failures.fetch_add(1);
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  // Every successful critical section is accounted for.
  EXPECT_EQ(counter, 2000 + static_cast<std::int64_t>(try_successes.load()));
}

TEST(McsTryV2, TryLockStarvesAgainstSaturatedQueue) {
  // The paper's incompatibility result: while blocking waiters keep the queue
  // non-empty, every release hands the lock to a queued waiter, so TryLock
  // essentially never finds it free.
  McsTryV2Lock lock;
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::vector<std::thread> hogs;
  for (int t = 0; t < 3; ++t) {
    hogs.emplace_back([&] {
      ready.fetch_add(1);
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        // Hold briefly; the queue stays occupied because the other hogs
        // enqueue while we hold.
        lock.unlock();
      }
    });
  }
  while (ready.load() != 3) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::uint64_t failures = 0;
  std::uint64_t successes = 0;
  for (int i = 0; i < 500; ++i) {
    if (lock.try_lock()) {
      ++successes;
      lock.unlock();
    } else {
      ++failures;
    }
    std::this_thread::yield();
  }
  stop = true;
  for (auto& h : hogs) {
    h.join();
  }
  // Retry-based locking is only probabilistically fair: the vast majority of
  // attempts must fail.  (On a single-core host the hogs barely overlap, so
  // keep the bound loose.)
  EXPECT_GT(failures, successes);
}

}  // namespace
}  // namespace hlock
