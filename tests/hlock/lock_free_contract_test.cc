// Pins the BasicLockFreeCounter::Update return-value contract and the
// free-list lock-freedom introspection added with the hot-path bugfix sweep.
//
// Update's contract is fetch_add-style: it returns the value held immediately
// BEFORE fn was applied.  A refactor that returns the post-update value
// instead silently shifts every "was this the transition?" caller by one
// step, and no existing test would have noticed -- this one does.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/hlock/lock_free.h"

namespace {

TEST(LockFreeCounterContract, UpdateReturnsPreUpdateValue) {
  hlock::LockFreeCounter counter;
  counter.Add(41);
  // fetch_add-style: the return is the old value, the counter holds f(old).
  EXPECT_EQ(counter.Update([](std::int64_t v) { return v + 1; }), 41);
  EXPECT_EQ(counter.Read(), 42);
  // Non-monotonic fn: still old-value-out.
  EXPECT_EQ(counter.Update([](std::int64_t v) { return v * -1; }), 42);
  EXPECT_EQ(counter.Read(), -42);
  // Identity fn: the "update" is a no-op but the return is still the
  // (unchanged) pre-update value.
  EXPECT_EQ(counter.Update([](std::int64_t v) { return v; }), -42);
  EXPECT_EQ(counter.Read(), -42);
}

TEST(LockFreeCounterContract, ConcurrentUpdatesEachSeeDistinctPreValues) {
  // Every Update(v -> v+1) must return a unique pre-value: if two threads
  // ever saw the same "old", an increment was lost or the return contract
  // broke.  4 threads x 1000 increments -> pre-values are exactly 0..3999.
  hlock::LockFreeCounter counter;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::vector<std::int64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &seen, t] {
      for (int i = 0; i < kIters; ++i) {
        seen[t].push_back(counter.Update([](std::int64_t v) { return v + 1; }));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.Read(), kThreads * kIters);
  std::vector<bool> hit(kThreads * kIters, false);
  for (const auto& vals : seen) {
    for (std::int64_t v : vals) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kThreads * kIters);
      EXPECT_FALSE(hit[v]) << "pre-value " << v << " returned twice";
      hit[v] = true;
    }
  }
}

TEST(LockFreeFreeListContract, LockFreedomIntrospectionIsConsistent) {
  // Whether the 16-byte head is genuinely lock-free depends on the build
  // (cmpxchg16b / LSE availability), so the value is not asserted.  The
  // runtime query may only STRENGTHEN the compile-time answer (libatomic can
  // discover cmpxchg16b at runtime even when is_always_lock_free is false),
  // never weaken it; the warn helper must report the compile-time constant.
  hlock::LockFreeFreeList list;
  if (hlock::LockFreeFreeList::kHeadIsAlwaysLockFree) {
    EXPECT_TRUE(list.head_is_lock_free());
  }
  EXPECT_EQ(hlock::LockFreeFreeList::WarnIfNotLockFree("contract test"),
            hlock::LockFreeFreeList::kHeadIsAlwaysLockFree);

  hlock::LockFreeNode a, b;
  list.Push(&a);
  list.Push(&b);
  EXPECT_EQ(list.Pop(), &b);
  EXPECT_EQ(list.Pop(), &a);
  EXPECT_EQ(list.Pop(), nullptr);
}

}  // namespace
