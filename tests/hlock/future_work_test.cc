// Tests for the Section 5.3 "current directions" implementations:
// spin-then-block locks and lock-free leaf structures.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hlock/lock_free.h"
#include "src/hlock/spin_then_block.h"

namespace hlock {
namespace {

TEST(SpinThenBlock, MutualExclusionStress) {
  SpinThenBlockLock lock;
  std::int64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 8000);
}

TEST(SpinThenBlock, BlockedWaiterIsWoken) {
  // With zero spin rounds the waiter must take the blocking path and still be
  // woken by unlock.
  SpinThenBlockLock lock(/*spin_rounds=*/0);
  lock.lock();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    lock.lock();
    acquired = true;
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(SpinThenBlock, TryLock) {
  SpinThenBlockLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(LockFreeCounter, ConcurrentAdds) {
  LockFreeCounter counter;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        counter.Add(1);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter.Read(), 20000);
}

TEST(LockFreeCounter, CasUpdate) {
  LockFreeCounter counter;
  counter.Add(10);
  const std::int64_t old = counter.Update([](std::int64_t v) { return v * 3; });
  EXPECT_EQ(old, 10);
  EXPECT_EQ(counter.Read(), 30);
}

TEST(LockFreeFreeList, PushPopSingleThread) {
  LockFreeFreeList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.Pop(), nullptr);
  LockFreeNode nodes[3];
  for (auto& n : nodes) {
    list.Push(&n);
  }
  // LIFO order.
  EXPECT_EQ(list.Pop(), &nodes[2]);
  EXPECT_EQ(list.Pop(), &nodes[1]);
  EXPECT_EQ(list.Pop(), &nodes[0]);
  EXPECT_TRUE(list.empty());
}

TEST(LockFreeFreeList, ConcurrentRecycleStress) {
  // Threads repeatedly pop a node from the shared pool and push it back: the
  // ABA-prone pattern the versioned head must survive.  Every node must be
  // accounted for at the end.
  LockFreeFreeList list;
  constexpr int kNodes = 8;
  LockFreeNode nodes[kNodes];
  for (auto& n : nodes) {
    list.Push(&n);
  }
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> recycles{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        LockFreeNode* node = list.Pop();
        if (node != nullptr) {
          list.Push(node);
          recycles.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_GT(recycles.load(), 0u);
  int recovered = 0;
  while (list.Pop() != nullptr) {
    ++recovered;
  }
  EXPECT_EQ(recovered, kNodes);
}

}  // namespace
}  // namespace hlock
