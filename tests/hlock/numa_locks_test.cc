// Property tests for the native NUMA-aware locks (CNA, HMCS-T, Fissile):
// mutual exclusion under real threads, timeout behaviour, and profiling-site
// attachment.  These run in the TSan job too — the algorithm cores are
// shared with the simulated and model-checked instantiations, so a data
// race here is a bug in every backend.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hlock/numa_locks.h"
#include "src/hprof/lock_site.h"

namespace hlock {
namespace {

template <typename Lock>
void MutualExclusionStress(Lock& lock, int threads, int iters) {
  std::int64_t counter = 0;
  std::atomic<int> overlap{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        lock.lock();
        if (overlap.fetch_add(1, std::memory_order_relaxed) != 0) {
          overlapped.store(true, std::memory_order_relaxed);
        }
        counter = counter + 1;
        overlap.fetch_sub(1, std::memory_order_relaxed);
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(counter, static_cast<std::int64_t>(threads) * iters);
}

constexpr int kThreads = 4;
constexpr int kIters = 2000;

TEST(NumaLocks, CnaMutualExclusion) {
  CnaLock lock(/*procs_per_cluster=*/2);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, CnaTightStreakMutualExclusion) {
  // max_streak=1 forces a secondary-queue flush on every grant decision —
  // the splice paths run constantly instead of rarely.
  CnaLock lock(/*procs_per_cluster=*/2, /*max_streak=*/1);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, CnaTryLock) {
  CnaLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(NumaLocks, HmcsTMutualExclusion) {
  HmcsTLock lock(/*procs_per_cluster=*/2);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, HmcsTTightThresholdMutualExclusion) {
  HmcsTLock lock(/*procs_per_cluster=*/2, /*threshold=*/1);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, HmcsTTimedAcquireSucceedsUncontended) {
  HmcsTLock lock(/*procs_per_cluster=*/2);
  ASSERT_TRUE(lock.try_lock_for(/*budget=*/1000));
  lock.unlock();
}

TEST(NumaLocks, HmcsTTimedAcquireTimesOutAndLeavesNoNodeBehind) {
  HmcsTLock lock(/*procs_per_cluster=*/2);
  lock.lock();
  std::atomic<int> failures{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      if (!lock.try_lock_for(/*budget=*/50)) {
        failures.fetch_add(1, std::memory_order_relaxed);
      } else {
        lock.unlock();
      }
    });
  }
  for (auto& w : waiters) {
    w.join();
  }
  lock.unlock();
  EXPECT_GT(failures.load(), 0);
  // Whatever timed out must have withdrawn cleanly: the lock still cycles.
  lock.lock();
  lock.unlock();
  ASSERT_TRUE(lock.try_lock_for(/*budget=*/1000));
  lock.unlock();
}

TEST(NumaLocks, FissileMutualExclusion) {
  FissileLock lock;
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, FissileTryLock) {
  FissileLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(NumaLocks, ProfilingSiteRecordsAcquisitions) {
  hprof::LockSiteStats site("test/cna", /*procs_per_cluster=*/2);
  CnaLock lock(/*procs_per_cluster=*/2);
  lock.set_site(&site);
  MutualExclusionStress(lock, kThreads, 500);
  lock.set_site(nullptr);
  EXPECT_EQ(site.acquisitions(), static_cast<std::uint64_t>(kThreads) * 500);
}

}  // namespace
}  // namespace hlock
