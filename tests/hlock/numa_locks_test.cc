// Property tests for the native NUMA-aware locks (CNA, HMCS-T, Fissile):
// mutual exclusion under real threads, timeout behaviour, and profiling-site
// attachment.  These run in the TSan job too — the algorithm cores are
// shared with the simulated and model-checked instantiations, so a data
// race here is a bug in every backend.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hlock/numa_locks.h"
#include "src/hprof/lock_site.h"

namespace hlock {
namespace {

template <typename Lock>
void MutualExclusionStress(Lock& lock, int threads, int iters) {
  std::int64_t counter = 0;
  std::atomic<int> overlap{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        lock.lock();
        if (overlap.fetch_add(1, std::memory_order_relaxed) != 0) {
          overlapped.store(true, std::memory_order_relaxed);
        }
        counter = counter + 1;
        overlap.fetch_sub(1, std::memory_order_relaxed);
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(counter, static_cast<std::int64_t>(threads) * iters);
}

constexpr int kThreads = 4;
constexpr int kIters = 2000;

TEST(NumaLocks, CnaMutualExclusion) {
  CnaLock lock(/*procs_per_cluster=*/2);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, CnaTightStreakMutualExclusion) {
  // max_streak=1 forces a secondary-queue flush on every grant decision —
  // the splice paths run constantly instead of rarely.
  CnaLock lock(/*procs_per_cluster=*/2, /*max_streak=*/1);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, CnaTryLock) {
  CnaLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(NumaLocks, HmcsTMutualExclusion) {
  HmcsTLock lock(/*procs_per_cluster=*/2);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, HmcsTTightThresholdMutualExclusion) {
  HmcsTLock lock(/*procs_per_cluster=*/2, /*threshold=*/1);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, HmcsTTimedAcquireSucceedsUncontended) {
  HmcsTLock lock(/*procs_per_cluster=*/2);
  ASSERT_TRUE(lock.try_lock_for(/*budget=*/1000));
  lock.unlock();
}

TEST(NumaLocks, HmcsTTimedAcquireTimesOutAndLeavesNoNodeBehind) {
  HmcsTLock lock(/*procs_per_cluster=*/2);
  lock.lock();
  std::atomic<int> failures{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      if (!lock.try_lock_for(/*budget=*/50)) {
        failures.fetch_add(1, std::memory_order_relaxed);
      } else {
        lock.unlock();
      }
    });
  }
  for (auto& w : waiters) {
    w.join();
  }
  lock.unlock();
  EXPECT_GT(failures.load(), 0);
  // Whatever timed out must have withdrawn cleanly: the lock still cycles.
  lock.lock();
  lock.unlock();
  ASSERT_TRUE(lock.try_lock_for(/*budget=*/1000));
  lock.unlock();
}

TEST(NumaLocks, FissileMutualExclusion) {
  FissileLock lock;
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, FissileTryLock) {
  FissileLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(NumaLocks, DrwWriterMutualExclusion) {
  DrwLock lock(/*procs_per_cluster=*/2);
  MutualExclusionStress(lock, kThreads, kIters);
}

// Readers and writers race the same shared value: TSan sees any reader that
// overlaps a writer, and the writer's two-step update is asserted never to be
// observed half-done.
TEST(NumaLocks, DrwReadersExcludeWriters) {
  DrwLock lock(/*procs_per_cluster=*/2);
  std::int64_t value = 0;  // guarded by `lock`; deliberately not atomic
  std::atomic<bool> torn{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t == 0) {
          lock.lock();
          value = value + 1;  // transiently odd...
          value = value + 1;  // ...even again before release
          lock.unlock();
        } else {
          lock.lock_shared();
          if (value % 2 != 0) {
            torn.store(true, std::memory_order_relaxed);
          }
          lock.unlock_shared();
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(torn.load());
  lock.lock();
  EXPECT_EQ(value, 2 * kIters);
  lock.unlock();
}

// Readers on different clusters genuinely overlap: with one reader parked
// inside its hold, a second reader must get in without waiting.
TEST(NumaLocks, DrwSharedHoldsOverlap) {
  DrwLock lock(/*procs_per_cluster=*/1);
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    lock.lock_shared();
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    lock.unlock_shared();
  });
  while (!parked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(lock.try_lock_shared());  // second reader alongside the first
  EXPECT_FALSE(lock.try_lock());        // but no writer
  lock.unlock_shared();
  release.store(true, std::memory_order_release);
  holder.join();
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(NumaLocks, DrwTryLock) {
  DrwLock lock(/*procs_per_cluster=*/2);
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
  ASSERT_TRUE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock_shared();
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
}

// Upgrade/downgrade under contention: workers take a shared hold, try to
// upgrade, and fall back to the from-scratch write path on a lost race (the
// documented contract).  Every worker's write lands exactly once.
TEST(NumaLocks, DrwUpgradeDowngradeStress) {
  DrwLock lock(/*procs_per_cluster=*/2);
  std::int64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.lock_shared();
        if (lock.try_upgrade()) {
          counter = counter + 1;
          lock.downgrade();
          lock.unlock_shared();
        } else {
          lock.unlock_shared();
          lock.lock();
          counter = counter + 1;
          lock.unlock();
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  lock.lock();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * 500);
  lock.unlock();
}

TEST(NumaLocks, DrwReaderPreferenceStillExcludes) {
  DrwLock lock(/*procs_per_cluster=*/2, algo::DrwPreference::kReaders);
  MutualExclusionStress(lock, kThreads, kIters);
}

TEST(NumaLocks, DrwProfilingSitesSplitReadersAndWriters) {
  hprof::LockSiteStats reader_site("test/drw.reader", /*procs_per_cluster=*/2);
  hprof::LockSiteStats writer_site("test/drw.writer", /*procs_per_cluster=*/2);
  DrwLock lock(/*procs_per_cluster=*/2);
  lock.set_sites(&reader_site, &writer_site);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        lock.lock_shared();
        lock.unlock_shared();
        lock.lock();
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  lock.set_sites(nullptr, nullptr);
  EXPECT_EQ(reader_site.acquisitions(), static_cast<std::uint64_t>(kThreads) * 200);
  EXPECT_EQ(writer_site.acquisitions(), static_cast<std::uint64_t>(kThreads) * 200);
}

TEST(NumaLocks, ProfilingSiteRecordsAcquisitions) {
  hprof::LockSiteStats site("test/cna", /*procs_per_cluster=*/2);
  CnaLock lock(/*procs_per_cluster=*/2);
  lock.set_site(&site);
  MutualExclusionStress(lock, kThreads, 500);
  lock.set_site(nullptr);
  EXPECT_EQ(site.acquisitions(), static_cast<std::uint64_t>(kThreads) * 500);
}

}  // namespace
}  // namespace hlock
