// Tests for ReserveCore's spin-backoff protocol, mirroring backoff_test.cc at
// the reserve-word layer.  The regression of record: the doubling delay must
// be owned by the *logical* acquire (ReserveCore::Backoff) and persist across
// SpinUntilFree round trips -- the pre-fix code re-armed it at kBaseBackoff on
// every retry, so the cap was dead code and a contended word was hammered at
// base delay forever.  The cap must also clamp the delay itself (a
// non-power-of-two cap used to be overshot on the last doubling step).
//
// A recording fake backend stands in for real memory: Load feeds the spin
// loop a scripted release point and BackoffUnits logs every (units, at_cap)
// pair.  RandomBelow returns its maximum, so the jittered delay equals the
// clamped delay exactly and the doubling sequence is directly visible.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/hlock/algo/backend.h"
#include "src/hlock/algo/reserve.h"

namespace {

struct FakeBackend {
  using Ctx = std::uint32_t;
  struct Word {
    std::uint64_t v = 0;
  };
  template <typename T>
  using TaskT = hlock::algo::SyncTask<T>;

  // Load observes `busy_value` until `free_after_backoffs` backoffs have been
  // recorded, then observes free.
  std::uint64_t busy_value = 1;
  std::size_t free_after_backoffs = 0;
  std::vector<std::uint64_t> units;
  std::vector<bool> at_cap;

  hlock::algo::Ready<std::uint64_t> Load(Ctx&, Word&, std::memory_order) {
    return {units.size() >= free_after_backoffs ? 0 : busy_value};
  }
  hlock::algo::Ready<void> Exec(Ctx&, std::uint32_t, std::uint32_t) { return {}; }
  hlock::algo::Ready<void> BackoffUnits(Ctx&, std::uint64_t n, bool cap) {
    units.push_back(n);
    at_cap.push_back(cap);
    return {};
  }
  // Maximum jitter: delay/2 + RandomBelow(delay/2 + 1) == delay (even delays),
  // so the recorded units *are* the clamped delay sequence.
  std::uint64_t RandomBelow(Ctx&, std::uint64_t bound) const {
    return bound == 0 ? 0 : bound - 1;
  }
  static void Check(bool ok, const char* message) { ASSERT_TRUE(ok) << message; }
};

using Reserve = hlock::algo::ReserveCore<FakeBackend>;

TEST(ReserveBackoffTest, DoublesFromBaseAndHoldsAtCap) {
  FakeBackend b;
  b.free_after_backoffs = 6;
  FakeBackend::Ctx ctx = 0;
  FakeBackend::Word word;
  typename Reserve::Backoff bo;
  Reserve::SpinUntilFree(b, ctx, word, /*max_backoff=*/64, bo).Get();
  const std::vector<std::uint64_t> want{8, 16, 32, 64, 64, 64};
  EXPECT_EQ(b.units, want);
  const std::vector<bool> want_cap{false, false, false, true, true, true};
  EXPECT_EQ(b.at_cap, want_cap);
  EXPECT_EQ(bo.delay, 64u);  // the caller's state ends parked at the cap
}

TEST(ReserveBackoffTest, ClampsToNonPowerOfTwoCap) {
  FakeBackend b;
  b.free_after_backoffs = 10;
  FakeBackend::Ctx ctx = 0;
  FakeBackend::Word word;
  typename Reserve::Backoff bo;
  Reserve::SpinUntilFree(b, ctx, word, /*max_backoff=*/1000, bo).Get();
  // 8, 16, ..., 512, then the doubling would hit 1024: the delay itself must
  // clamp to 1000, not overshoot to the next power of two.
  for (std::size_t i = 0; i < b.units.size(); ++i) {
    EXPECT_LE(b.units[i], 1000u) << "overshot the cap on round " << i;
  }
  EXPECT_EQ(b.units.back(), 1000u);
  EXPECT_FALSE(b.at_cap[6]);  // 512 < 1000
  EXPECT_TRUE(b.at_cap[7]);   // first clamped round
}

TEST(ReserveBackoffTest, CapBelowBaseClampsImmediately) {
  FakeBackend b;
  b.free_after_backoffs = 2;
  FakeBackend::Ctx ctx = 0;
  FakeBackend::Word word;
  typename Reserve::Backoff bo;
  Reserve::SpinUntilFree(b, ctx, word, /*max_backoff=*/4, bo).Get();
  const std::vector<std::uint64_t> want{4, 4};
  EXPECT_EQ(b.units, want);
  EXPECT_TRUE(b.at_cap[0]);
}

// The bugfix pinned: one logical acquire spins, loses the re-acquire race,
// and spins again.  The second spin must continue the doubling where the
// first left off -- not re-arm at kBaseBackoff.
TEST(ReserveBackoffTest, DelayPersistsAcrossSpinCalls) {
  FakeBackend b;
  b.free_after_backoffs = 3;
  FakeBackend::Ctx ctx = 0;
  FakeBackend::Word word;
  typename Reserve::Backoff bo;
  Reserve::SpinUntilFree(b, ctx, word, /*max_backoff=*/1024, bo).Get();
  std::vector<std::uint64_t> want{8, 16, 32};
  EXPECT_EQ(b.units, want);
  // The caller re-took the coarse lock, found the word reserved again, and
  // spins a second time with the same Backoff.
  b.free_after_backoffs = b.units.size() + 2;
  Reserve::SpinUntilFree(b, ctx, word, /*max_backoff=*/1024, bo).Get();
  want = {8, 16, 32, 64, 128};
  EXPECT_EQ(b.units, want);
}

// The one-shot overloads are for callers whose whole retry loop is the spin:
// each call is a fresh logical acquire and starts back at the base delay.
TEST(ReserveBackoffTest, OneShotOverloadStartsFresh) {
  FakeBackend b;
  b.free_after_backoffs = 2;
  FakeBackend::Ctx ctx = 0;
  FakeBackend::Word word;
  Reserve::SpinUntilFree(b, ctx, word, /*max_backoff=*/1024).Get();
  b.free_after_backoffs = b.units.size() + 2;
  Reserve::SpinUntilFree(b, ctx, word, /*max_backoff=*/1024).Get();
  const std::vector<std::uint64_t> want{8, 16, 8, 16};
  EXPECT_EQ(b.units, want);
}

// SpinWhileExclusive shares the protocol: it admits any non-exclusive state
// (a reader count is not a reason to wait) and backs off identically while
// the word is exclusively reserved.
TEST(ReserveBackoffTest, SpinWhileExclusiveSharesTheProtocol) {
  FakeBackend b;
  b.busy_value = Reserve::kExclusive;
  b.free_after_backoffs = 4;
  FakeBackend::Ctx ctx = 0;
  FakeBackend::Word word;
  typename Reserve::Backoff bo;
  Reserve::SpinWhileExclusive(b, ctx, word, /*max_backoff=*/32, bo).Get();
  const std::vector<std::uint64_t> want{8, 16, 32, 32};
  EXPECT_EQ(b.units, want);

  // A reader-held word does not delay a reader at all.
  b.units.clear();
  b.busy_value = 3;
  b.free_after_backoffs = 99;
  Reserve::SpinWhileExclusive(b, ctx, word, /*max_backoff=*/32, bo).Get();
  EXPECT_TRUE(b.units.empty());
}

}  // namespace
