// Tests of the dense-thread-id allocator: recycling under churn, distinctness
// among concurrently live threads, and the hard abort (instead of the old
// silent `% kMaxThreads` wrap that handed two live threads the same per-lock
// queue node) when the concurrent-liveness bound is exceeded.

#include "src/hlock/thread_id.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace {

TEST(ThreadId, StableWithinAThread) {
  const std::uint32_t a = hlock::CurrentThreadId();
  const std::uint32_t b = hlock::CurrentThreadId();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, hlock::kMaxThreads);
}

// Many more short-lived threads than kMaxThreads: with id recycling every id
// stays in range and the process stays alive.  (Under the old wrap behavior
// this pattern silently aliased ids; under a recycle-free abort design it
// would kill the process.)
TEST(ThreadId, ChurnBeyondMaxThreadsRecyclesIds) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < hlock::kMaxThreads + 64; ++i) {
    std::uint32_t id = hlock::kMaxThreads;
    std::thread t([&id] { id = hlock::CurrentThreadId(); });
    t.join();
    ASSERT_LT(id, hlock::kMaxThreads) << "id out of range on iteration " << i;
    seen.insert(id);
  }
  // Sequential lifetimes: the freed id is reused, so only a handful of
  // distinct ids are ever handed out.
  EXPECT_LT(seen.size(), 16u);
}

// Concurrently live threads must all hold distinct ids.
TEST(ThreadId, ConcurrentThreadsGetDistinctIds) {
  constexpr int kThreads = 16;
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool release = false;
  std::vector<std::uint32_t> ids(kThreads);

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ids[i] = hlock::CurrentThreadId();
      std::unique_lock<std::mutex> lk(mu);
      if (++arrived == kThreads) {
        cv.notify_all();
      }
      cv.wait(lk, [&] { return release; });
    });
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return arrived == kThreads; });
    release = true;
  }
  cv.notify_all();
  for (auto& t : threads) {
    t.join();
  }

  std::set<std::uint32_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kThreads));
  for (std::uint32_t id : ids) {
    EXPECT_LT(id, hlock::kMaxThreads);
  }
}

// Exceeding the bound with *concurrently live* threads must abort with a
// diagnostic rather than alias per-thread queue nodes.
TEST(ThreadIdDeathTest, TooManyLiveThreadsAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        std::mutex mu;
        std::condition_variable cv;
        std::uint32_t arrived = 0;
        bool release = false;
        std::vector<std::thread> threads;
        // One more than the bound.  Every thread holds its id until all have
        // allocated — without the barrier, early threads could exit and
        // recycle their ids before late threads ask, and nothing would abort.
        for (std::uint32_t i = 0; i < hlock::kMaxThreads + 1; ++i) {
          threads.emplace_back([&] {
            (void)hlock::CurrentThreadId();  // thread kMaxThreads aborts here
            std::unique_lock<std::mutex> lk(mu);
            ++arrived;
            cv.notify_all();
            // Timed so a regression fails as "failed to die" instead of
            // hanging: the expected abort kills the process long before this.
            cv.wait_for(lk, std::chrono::seconds(30), [&] { return release; });
          });
        }
        {
          std::unique_lock<std::mutex> lk(mu);
          cv.wait_for(lk, std::chrono::seconds(30),
                      [&] { return arrived == hlock::kMaxThreads + 1; });
          release = true;
        }
        cv.notify_all();
        for (auto& t : threads) {
          t.join();
        }
      },
      "concurrently live threads");
}

}  // namespace
